"""Campaign configurations and experiment scales.

Every campaign is identified by a (program, technique, max-MBF, win-size)
tuple plus the number of experiments to run.  Seeding is fully deterministic:
a campaign derives its RNG seed from the master seed and its own identity, so
re-running any subset of campaigns reproduces the same numbers.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.injection.faultmodel import (
    SINGLE_BIT_MAX_MBF,
    MultiBitCluster,
    WinSizeSpec,
)


@dataclass(frozen=True)
class ExperimentScale:
    """Bundle of knobs that trade fidelity for runtime.

    The paper runs 10,000 experiments per campaign (PAPER scale).  The SMOKE
    and BENCH presets keep the same statistical machinery at a size that runs
    in seconds/minutes on a laptop; EXPERIMENTS.md records which scale was
    used for every reported number.
    """

    name: str
    experiments_per_campaign: int
    #: Hang watchdog = multiplier × fault-free dynamic instruction count.
    watchdog_multiplier: int = 12

    def __post_init__(self) -> None:
        if self.experiments_per_campaign < 1:
            raise ConfigurationError("experiments_per_campaign must be positive")
        if self.watchdog_multiplier < 2:
            raise ConfigurationError("watchdog_multiplier must be at least 2")

    def with_experiments(self, experiments: int) -> "ExperimentScale":
        return replace(self, experiments_per_campaign=experiments)


#: Used by unit tests and CI smoke checks.
SMOKE_SCALE = ExperimentScale("smoke", experiments_per_campaign=40)
#: Default for the benchmark harness in ``benchmarks/``.
BENCH_SCALE = ExperimentScale("bench", experiments_per_campaign=150)
#: The paper's own scale (provided for completeness; hours of runtime).
PAPER_SCALE = ExperimentScale("paper", experiments_per_campaign=10_000)


@dataclass(frozen=True)
class CampaignConfig:
    """One fault-injection campaign: a fault model applied to one workload."""

    program: str
    technique: str
    max_mbf: int
    win_size: WinSizeSpec
    experiments: int
    master_seed: int = 2017  # the year of the paper, used as the default seed

    def __post_init__(self) -> None:
        if self.max_mbf < 1:
            raise ConfigurationError("max-MBF must be at least 1")
        if self.experiments < 1:
            raise ConfigurationError("a campaign needs at least one experiment")
        if self.technique not in ("inject-on-read", "inject-on-write"):
            raise ConfigurationError(f"unknown technique {self.technique!r}")

    # -- identity -----------------------------------------------------------
    @property
    def is_single_bit(self) -> bool:
        return self.max_mbf == SINGLE_BIT_MAX_MBF

    @property
    def cluster(self) -> MultiBitCluster:
        return MultiBitCluster(self.max_mbf, self.win_size)

    @property
    def campaign_id(self) -> str:
        """Stable, human-readable identifier used as the result-store key."""
        return (
            f"{self.program}/{self.technique}/mbf={self.max_mbf}/"
            f"win={self.win_size.index}:{self.win_size.label}"
        )

    @property
    def seed(self) -> int:
        """Deterministic per-campaign seed derived from identity + master seed."""
        digest = hashlib.sha256(
            f"{self.master_seed}|{self.campaign_id}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def experiment_seed(self, index: int) -> int:
        """Deterministic seed for experiment ``index`` of this campaign.

        Seeds are derived independently per index (not drawn from one
        sequential stream), so experiments may run in any order — or on any
        process of a worker pool — and still sample exactly the same faults,
        and any single experiment can be replayed in isolation by its index.
        """
        if index < 0:
            raise ConfigurationError("experiment index must be non-negative")
        digest = hashlib.sha256(
            f"{self.master_seed}|{self.campaign_id}|experiment={index}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def resolve_win_size(self) -> int:
        """Resolve the win-size spec to a concrete dynamic distance.

        Random ranges (w4/w6/w8) resolve once per campaign from the campaign
        seed alone, independent of the experiment stream, so serial and
        parallel executions agree on the resolved window.
        """
        return self.win_size.resolve(random.Random(self.seed))

    def describe(self) -> str:
        model = "single bit-flip" if self.is_single_bit else self.cluster.label
        return f"{self.program} / {self.technique} / {model} / {self.experiments} experiments"

    def with_scale(self, scale: ExperimentScale) -> "CampaignConfig":
        return replace(self, experiments=scale.experiments_per_campaign)
