"""Supervised chunk dispatch over raw worker processes.

``multiprocessing.Pool`` cannot survive a worker that dies mid-task: the
pool respawns the process but the task it was holding is silently lost and
``imap`` blocks forever.  This module replaces the pool for campaign
execution with an explicitly supervised crew of worker processes:

* each worker owns one duplex pipe; the parent closes the child end after
  the fork, so a dead worker reads as EOF instead of a hang;
* every chunk carries a deadline derived from observed per-unit throughput
  (or an explicit ``chunk_timeout``), so a *wedged* worker is detected and
  killed, not just a dead one;
* failed chunks are retried with capped exponential backoff; chunks that
  keep killing workers are bisected down to the offending experiment, which
  is quarantined (reported to the caller, recorded upstream with the
  ``crashed`` outcome) instead of poisoning the run;
* SIGINT/SIGTERM stop further grants, drain in-flight chunks and return
  with ``interrupted`` set so the engine can flush its ledger and print
  resume instructions; a second signal aborts immediately;
* a burst of consecutive worker crashes marks the run ``degraded`` — the
  engine then finishes the remaining chunks serially in-process rather
  than dying.

Determinism is preserved because chunks are location-independent: results
are keyed by chunk start index and merged in index order, so retries,
bisection and out-of-order completion cannot change the assembled bytes.

Chaos knobs (read in the *worker*, for tests and the CI resilience smoke):

``REPRO_CHAOS_KILL_NTH_CHUNK``
    Every worker SIGKILLs itself upon receiving its *n*-th chunk.  ``n=1``
    means no worker ever completes a chunk — the supervisor must degrade to
    serial execution and still finish the campaign.

``REPRO_CHAOS_ABORT_AFTER_CHUNKS``
    Parent-side: behave as if SIGINT arrived after *n* chunks completed
    (deterministic interrupt for resume tests).
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CampaignExecutionError
from repro.telemetry import metrics as telemetry_metrics

CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_NTH_CHUNK"
CHAOS_ABORT_ENV = "REPRO_CHAOS_ABORT_AFTER_CHUNKS"


@dataclass
class ChunkTask:
    """One retryable unit of campaign work.

    ``chunk_id`` is the chunk's start offset in the campaign's index space —
    it doubles as the merge key, so bisected children (which inherit their
    own start offsets) slot into the same ordering as original grants.
    ``fn`` must be a module-level callable ``fn(state, payload)`` (it crosses
    the pipe by pickle); ``state`` is whatever the initializer returned.
    """

    chunk_id: int
    fn: Callable[[Any, Any], Any]
    payload: Any
    size: int
    meta: Any = None
    attempts: int = 0
    not_before: float = 0.0


@dataclass
class QuarantinedChunk:
    """A chunk (bisected to minimal size) that exhausted its retries."""

    task: ChunkTask
    error: str


@dataclass
class SupervisorStats:
    """Counters surfaced in campaign summaries (``phase_seconds`` style)."""

    retries: int = 0
    worker_restarts: int = 0
    timeouts: int = 0
    bisections: int = 0
    quarantined_units: int = 0
    chunks_completed: int = 0
    degraded: bool = False
    interrupted: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "timeouts": self.timeouts,
            "bisections": self.bisections,
            "quarantined_units": self.quarantined_units,
            "chunks_completed": self.chunks_completed,
            "degraded": self.degraded,
            "interrupted": self.interrupted,
        }

    def merge(self, other: "SupervisorStats") -> None:
        self.retries += other.retries
        self.worker_restarts += other.worker_restarts
        self.timeouts += other.timeouts
        self.bisections += other.bisections
        self.quarantined_units += other.quarantined_units
        self.chunks_completed += other.chunks_completed
        self.degraded = self.degraded or other.degraded
        self.interrupted = self.interrupted or other.interrupted


@dataclass
class SupervisedRun:
    """Everything a supervised dispatch produced."""

    results: Dict[int, Any] = field(default_factory=dict)
    quarantined: List[QuarantinedChunk] = field(default_factory=list)
    unfinished: List[ChunkTask] = field(default_factory=list)
    stats: SupervisorStats = field(default_factory=SupervisorStats)

    @property
    def interrupted(self) -> bool:
        return self.stats.interrupted

    @property
    def degraded(self) -> bool:
        return self.stats.degraded


# -- worker side -------------------------------------------------------------------


def _worker_main(conn, initializer, initargs) -> None:
    """Entry point of one supervised worker process.

    Initialises state once (compile + profile the workload), then serves
    ``(fn, chunk_id, payload)`` requests until EOF or a ``None`` sentinel.
    All chunk exceptions are caught and reported as ``error`` replies — only
    genuine process death (OOM, SIGKILL, interpreter abort) ever costs the
    parent a worker.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        kill_nth = int(os.environ.get(CHAOS_KILL_ENV, "0") or 0)
    except ValueError:
        kill_nth = 0
    try:
        state = initializer(*initargs)
    except BaseException:
        try:
            conn.send(("init-error", -1, traceback.format_exc(limit=16), None))
        except (BrokenPipeError, OSError):
            pass
        return
    handled = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        fn, chunk_id, payload = message
        handled += 1
        if kill_nth and handled == kill_nth:
            os.kill(os.getpid(), signal.SIGKILL)
        # Each reply piggybacks the worker's metric delta for the chunk, so
        # the parent registry aggregates cluster-wide counters without any
        # extra IPC round.  Disabled telemetry ships None (no snapshot cost).
        metrics_before = (
            telemetry_metrics.registry().snapshot()
            if telemetry_metrics.enabled()
            else None
        )
        try:
            body = fn(state, payload)
            delta = (
                telemetry_metrics.registry().snapshot_delta(metrics_before)
                if metrics_before is not None
                else None
            )
            reply = ("ok", chunk_id, body, delta)
        except BaseException:
            reply = ("error", chunk_id, traceback.format_exc(limit=16), None)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# -- parent side -------------------------------------------------------------------


class _Worker:
    __slots__ = ("process", "conn", "task", "sent_at", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[ChunkTask] = None
        self.sent_at = 0.0
        self.deadline = 0.0


class _SignalGuard:
    """Graceful-stop flag driven by SIGINT/SIGTERM (main thread only)."""

    def __init__(self) -> None:
        self.stop_requested = False
        self._previous: List[Tuple[int, Any]] = []

    def install(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous.append((signum, signal.signal(signum, self._handle)))
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _handle(self, signum, frame) -> None:
        if self.stop_requested:
            # Second signal: the user really means it.
            raise KeyboardInterrupt
        self.stop_requested = True

    def restore(self) -> None:
        for signum, handler in self._previous:
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous = []


class ChunkSupervisor:
    """Dispatches :class:`ChunkTask` batches to supervised worker processes.

    Parameters mirror the CLI knobs: ``max_retries`` attempts per chunk
    before bisection/quarantine, ``chunk_timeout`` pins every chunk deadline
    (default: deadlines derive from observed throughput), ``quarantine``
    turns repeated-crash experiments into reported quarantines instead of a
    raised :class:`~repro.errors.CampaignExecutionError`.
    """

    def __init__(
        self,
        *,
        jobs: int,
        context,
        initializer: Callable,
        initargs: Tuple = (),
        max_retries: int = 3,
        chunk_timeout: Optional[float] = None,
        quarantine: bool = True,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        deadline_factor: float = 8.0,
        deadline_floor: float = 5.0,
        initial_deadline: float = 120.0,
        max_consecutive_crashes: Optional[int] = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.context = context
        self.initializer = initializer
        self.initargs = initargs
        self.max_retries = max(0, max_retries)
        self.chunk_timeout = chunk_timeout
        self.quarantine = quarantine
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.deadline_factor = deadline_factor
        self.deadline_floor = deadline_floor
        self.initial_deadline = initial_deadline
        self.max_consecutive_crashes = (
            max_consecutive_crashes
            if max_consecutive_crashes is not None
            else max(6, 2 * self.jobs)
        )
        self._unit_seconds: Optional[float] = None

    # -- lifecycle helpers --------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        process = self.context.Process(
            target=_worker_main,
            args=(child_conn, self.initializer, self.initargs),
            daemon=True,
        )
        process.start()
        # Close our copy of the child end: once the worker dies, reads on
        # the parent end hit EOF instead of blocking forever.
        child_conn.close()
        return _Worker(process, parent_conn)

    @staticmethod
    def _dispose(worker: _Worker, *, kill: bool = False) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if kill and worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover - stubborn process
            worker.process.kill()
            worker.process.join(timeout=1.0)

    def _deadline(self, task: ChunkTask, now: float) -> float:
        if self.chunk_timeout is not None:
            return now + self.chunk_timeout
        if self._unit_seconds is None:
            return now + self.initial_deadline
        expected = self._unit_seconds * max(1, task.size)
        return now + max(self.deadline_floor, self.deadline_factor * expected)

    def _observe(self, task: ChunkTask, elapsed: float) -> None:
        sample = max(1e-6, elapsed / max(1, task.size))
        if self._unit_seconds is None:
            self._unit_seconds = sample
        else:
            self._unit_seconds += 0.3 * (sample - self._unit_seconds)

    # -- the dispatch loop --------------------------------------------------------

    def run(
        self,
        tasks: Sequence[ChunkTask],
        *,
        split: Optional[Callable[[ChunkTask], List[ChunkTask]]] = None,
        on_chunk_done: Optional[Callable[[ChunkTask, Any], None]] = None,
        on_grant: Optional[Callable[[ChunkTask], None]] = None,
        on_event: Optional[Callable[..., None]] = None,
    ) -> SupervisedRun:
        run = SupervisedRun()
        pending: List[ChunkTask] = sorted(tasks, key=lambda t: t.chunk_id)
        if not pending:
            return run
        stats = run.stats
        workers: List[_Worker] = []
        consecutive_crashes = 0
        try:
            abort_after = int(os.environ.get(CHAOS_ABORT_ENV, "0") or 0)
        except ValueError:
            abort_after = 0
        guard = _SignalGuard()
        guard.install()

        def emit(event_type: str, **fields) -> None:
            # Observability must never take the dispatch loop down with it.
            if on_event is None:
                return
            try:
                on_event(event_type, **fields)
            except Exception:
                pass

        def fail(task: ChunkTask, error: str, now: float, *, crashed: bool) -> None:
            nonlocal consecutive_crashes
            if crashed:
                consecutive_crashes += 1
                if consecutive_crashes >= self.max_consecutive_crashes:
                    stats.degraded = True
            task.attempts += 1
            if task.attempts <= self.max_retries:
                stats.retries += 1
                delay = min(
                    self.backoff_cap, self.backoff_base * (2 ** (task.attempts - 1))
                )
                task.not_before = now + delay
                pending.append(task)
                emit(
                    "chunk_retried",
                    chunk=task.chunk_id,
                    count=task.size,
                    attempts=task.attempts,
                )
            elif task.size > 1 and split is not None:
                stats.bisections += 1
                emit("chunk_bisected", chunk=task.chunk_id, count=task.size)
                for child in split(task):
                    child.attempts = 0
                    child.not_before = now
                    pending.append(child)
            elif self.quarantine:
                stats.quarantined_units += task.size
                run.quarantined.append(QuarantinedChunk(task, error))
                emit(
                    "quarantine",
                    chunk=task.chunk_id,
                    units=task.size,
                    reason=error.strip()[-200:],
                )
            else:
                raise CampaignExecutionError(
                    f"chunk {task.chunk_id} (+{task.size}) failed "
                    f"{task.attempts} times and quarantine is disabled:\n{error}"
                )

        def handle_crash(worker: _Worker, reason: str, now: float) -> None:
            stats.worker_restarts += 1
            task = worker.task
            worker.task = None
            workers.remove(worker)
            self._dispose(worker, kill=True)
            emit("worker_restart", reason=reason.strip()[-200:])
            if task is not None:
                fail(task, reason, now, crashed=True)

        try:
            while True:
                in_flight = [w for w in workers if w.task is not None]
                if stats.degraded:
                    break
                if not pending and not in_flight:
                    break
                if guard.stop_requested:
                    stats.interrupted = True
                    if not in_flight:
                        break
                now = time.monotonic()

                # Grant work to idle (or freshly spawned) workers.
                if not guard.stop_requested:
                    eligible = sorted(
                        (t for t in pending if t.not_before <= now),
                        key=lambda t: t.chunk_id,
                    )
                    for task in eligible:
                        worker = next((w for w in workers if w.task is None), None)
                        if worker is None:
                            if len(workers) >= self.jobs:
                                break
                            worker = self._spawn()
                            workers.append(worker)
                        try:
                            worker.conn.send((task.fn, task.chunk_id, task.payload))
                        except (BrokenPipeError, OSError):
                            pending.remove(task)
                            worker.task = task
                            handle_crash(worker, "worker pipe closed on send", now)
                            continue
                        pending.remove(task)
                        worker.task = task
                        worker.sent_at = now
                        worker.deadline = self._deadline(task, now)
                        if on_grant is not None and task.attempts == 0:
                            on_grant(task)

                # Wait for replies, deaths, deadlines or backoff expiry.
                timeout = 0.5
                for worker in workers:
                    if worker.task is not None:
                        timeout = min(timeout, max(0.0, worker.deadline - now))
                for task in pending:
                    if task.not_before > now:
                        timeout = min(timeout, max(0.0, task.not_before - now))
                conns = [w.conn for w in workers]
                if conns:
                    ready = _connection_wait(conns, timeout)
                else:
                    if timeout > 0:
                        time.sleep(min(timeout, 0.05))
                    ready = []

                now = time.monotonic()
                for conn in ready:
                    worker = next((w for w in workers if w.conn is conn), None)
                    if worker is None:
                        continue
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        handle_crash(worker, "worker process died", now)
                        continue
                    kind, chunk_id, body, worker_metrics = message
                    if kind == "ok":
                        task = worker.task
                        worker.task = None
                        if task is None or task.chunk_id != chunk_id:
                            continue  # stale reply from a superseded grant
                        consecutive_crashes = 0
                        if worker_metrics:
                            # Fold the worker's per-chunk metric delta into
                            # the parent registry, next to the partial
                            # result it travelled with.
                            telemetry_metrics.registry().merge(worker_metrics)
                        self._observe(task, now - worker.sent_at)
                        run.results[task.chunk_id] = body
                        stats.chunks_completed += 1
                        if on_chunk_done is not None:
                            on_chunk_done(task, body)
                        if (
                            abort_after
                            and stats.chunks_completed >= abort_after
                            and not guard.stop_requested
                        ):
                            guard.stop_requested = True
                    elif kind == "error":
                        task = worker.task
                        worker.task = None
                        if task is not None and task.chunk_id == chunk_id:
                            consecutive_crashes = 0  # the worker survived
                            fail(task, body, now, crashed=False)
                    else:  # "init-error": the worker never became usable
                        handle_crash(worker, f"worker failed to initialise:\n{body}", now)

                # Deadline sweep: a worker past its chunk deadline is wedged.
                now = time.monotonic()
                for worker in list(workers):
                    if worker.task is not None and now > worker.deadline:
                        stats.timeouts += 1
                        emit(
                            "chunk_timeout",
                            chunk=worker.task.chunk_id,
                            count=worker.task.size,
                            deadline_seconds=round(
                                worker.deadline - worker.sent_at, 3
                            ),
                        )
                        handle_crash(
                            worker,
                            f"chunk {worker.task.chunk_id} exceeded its "
                            f"{worker.deadline - worker.sent_at:.1f}s deadline",
                            now,
                        )
        finally:
            guard.restore()
            for worker in list(workers):
                if worker.task is not None:
                    run.unfinished.append(worker.task)
                    worker.task = None
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                self._dispose(worker, kill=True)
            workers.clear()
        run.unfinished.extend(pending)
        run.unfinished.sort(key=lambda t: t.chunk_id)
        return run
