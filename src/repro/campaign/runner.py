"""Campaign execution: run every experiment of one or more campaigns.

The runner caches one :class:`~repro.injection.experiment.ExperimentRunner`
per workload (compiling the program, decoding it into its executable form
and profiling its golden trace exactly once in this process), and delegates
per-experiment execution to a pluggable
:class:`~repro.campaign.engine.ExecutionEngine` — serial by default, a
multiprocess worker pool when throughput matters.  Seeding is derived per
experiment index from the campaign configuration, so every engine produces
bit-identical results for the same seed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.campaign.config import CampaignConfig
from repro.campaign.engine import (
    CachingProvider,
    ExecutionEngine,
    ProgressCallback,
    RunnerProvider,
    SerialEngine,
    registry_provider,
)
from repro.campaign.results import CampaignResult, ResultStore
from repro.injection.experiment import ExperimentRunner

#: Called with each finished campaign result as a sweep streams along.
ResultCallback = Callable[[CampaignResult], None]

# Backwards-compatible alias; the canonical definition lives in the engine module.
_default_provider = registry_provider


class CampaignRunner:
    """Executes campaigns through an execution engine and accumulates results."""

    def __init__(
        self,
        provider: Optional[RunnerProvider] = None,
        *,
        engine: Optional[ExecutionEngine] = None,
        keep_records: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        experiment_progress: Optional[ProgressCallback] = None,
    ) -> None:
        # The caching wrapper is shared with the engine: it keeps one compiled
        # workload per program in this process and stays picklable (cache
        # dropped) when a spawn-based pool ships it to workers.
        self._provider = CachingProvider(provider)
        self._engine = engine if engine is not None else SerialEngine()
        self._keep_records = keep_records
        self._progress = progress
        self._experiment_progress = experiment_progress

    @property
    def engine(self) -> ExecutionEngine:
        return self._engine

    @property
    def supervision(self) -> dict:
        """Fault-tolerance accounting of the engine's most recent run."""
        return dict(self._engine.supervision)

    # -- workload management --------------------------------------------------------
    def experiment_runner(self, program_name: str) -> ExperimentRunner:
        """The cached per-workload experiment runner (golden trace included)."""
        return self._provider(program_name)

    # -- error-space execution ---------------------------------------------------------
    def run_errors(self, program: str, technique: str, errors, on_progress=None):
        """Execute deterministic single-bit errors through the engine.

        The execution path of exhaustive/pruned campaigns: outcomes come
        back in input order, and the engine applies the same tick-sorted
        batching (and, for pools, chunk dispatch) as sampled campaigns.
        """
        return self._engine.run_errors(
            program,
            technique,
            errors,
            provider=self._provider,
            on_progress=on_progress if on_progress is not None else self._experiment_progress,
        )

    # -- campaign execution -----------------------------------------------------------
    def run_campaign(self, config: CampaignConfig) -> CampaignResult:
        """Run every experiment of one campaign and aggregate the outcomes."""
        if self._progress is not None:
            self._progress(config.describe())
        return self._engine.run(
            config,
            provider=self._provider,
            keep_records=self._keep_records,
            on_progress=self._experiment_progress,
        )

    def run_campaigns(
        self,
        configs: Sequence[CampaignConfig],
        store: Optional[ResultStore] = None,
        *,
        skip_existing: bool = True,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        on_result: Optional[ResultCallback] = None,
    ) -> ResultStore:
        """Run many campaigns, reusing any results already in ``store``.

        When ``checkpoint_path`` is given, the store is persisted to disk
        after every ``checkpoint_every`` freshly completed campaigns, so a
        long sweep that is interrupted mid-way resumes from the last
        checkpoint instead of restarting.  ``on_result`` streams each
        completed campaign result to the caller as the sweep progresses
        (invoked after the checkpoint covering it, if any, is written).
        """
        store = store if store is not None else ResultStore()
        checkpoint = Path(checkpoint_path) if checkpoint_path is not None else None
        completed_since_checkpoint = 0
        for config in configs:
            if skip_existing and config in store:
                continue
            result = self.run_campaign(config)
            store.add(result)
            completed_since_checkpoint += 1
            if checkpoint is not None and completed_since_checkpoint >= checkpoint_every:
                self._checkpoint(store, checkpoint)
                completed_since_checkpoint = 0
            if on_result is not None:
                on_result(result)
        if checkpoint is not None and completed_since_checkpoint > 0:
            self._checkpoint(store, checkpoint)
        return store

    @staticmethod
    def _checkpoint(store: ResultStore, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        store.save(path)
