"""Campaign execution: run every experiment of one or more campaigns.

The runner caches one :class:`~repro.injection.experiment.ExperimentRunner`
per workload (compiling the program and profiling its golden trace exactly
once), then executes campaigns sequentially.  Everything is seeded from the
campaign configuration so results are reproducible run-to-run.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.campaign.config import CampaignConfig
from repro.campaign.results import CampaignResult, ResultStore
from repro.injection.experiment import ExperimentRunner
from repro.injection.techniques import technique_by_name

#: A provider maps a program name to a ready-to-use ExperimentRunner.
RunnerProvider = Callable[[str], ExperimentRunner]


def _default_provider(program_name: str) -> ExperimentRunner:
    """Resolve programs through the benchmark registry (imported lazily)."""
    from repro.programs.registry import get_experiment_runner

    return get_experiment_runner(program_name)


class CampaignRunner:
    """Executes campaigns and accumulates their results in a store."""

    def __init__(
        self,
        provider: Optional[RunnerProvider] = None,
        *,
        keep_records: bool = True,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._provider = provider or _default_provider
        self._keep_records = keep_records
        self._progress = progress
        self._experiment_runners: Dict[str, ExperimentRunner] = {}

    # -- workload management --------------------------------------------------------
    def experiment_runner(self, program_name: str) -> ExperimentRunner:
        """The cached per-workload experiment runner (golden trace included)."""
        if program_name not in self._experiment_runners:
            self._experiment_runners[program_name] = self._provider(program_name)
        return self._experiment_runners[program_name]

    # -- campaign execution -----------------------------------------------------------
    def run_campaign(self, config: CampaignConfig) -> CampaignResult:
        """Run every experiment of one campaign and aggregate the outcomes."""
        if self._progress is not None:
            self._progress(config.describe())
        workload = self.experiment_runner(config.program)
        technique = technique_by_name(config.technique)
        rng = random.Random(config.seed)
        resolved_win_size = config.win_size.resolve(rng)
        result = CampaignResult(config=config, resolved_win_size=resolved_win_size)

        for _ in range(config.experiments):
            experiment = workload.run_sampled(
                technique,
                max_mbf=config.max_mbf,
                win_size=resolved_win_size,
                rng=rng,
            )
            result.add_experiment(
                outcome=experiment.outcome,
                activated_errors=experiment.activated_errors,
                first_dynamic_index=experiment.spec.first_dynamic_index,
                first_slot=experiment.spec.first_slot,
                keep_record=self._keep_records,
            )
        return result

    def run_campaigns(
        self,
        configs: Sequence[CampaignConfig],
        store: Optional[ResultStore] = None,
        *,
        skip_existing: bool = True,
    ) -> ResultStore:
        """Run many campaigns, reusing any results already in ``store``."""
        store = store if store is not None else ResultStore()
        for config in configs:
            if skip_existing and config in store:
                continue
            store.add(self.run_campaign(config))
        return store
