"""Per-campaign results and the queryable result store.

:class:`CampaignResult` aggregates one campaign: outcome counts, the
activated-error histogram (for RQ1/Fig. 3), and per-experiment records (first
injection location + outcome) that the transition study of RQ5/Table IV
replays.  :class:`ResultStore` holds many campaign results, supports the
queries the analysis layer needs, and round-trips to JSON so expensive
campaign sweeps can be cached on disk.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.campaign.config import CampaignConfig
from repro.errors import AnalysisError
from repro.injection.faultmodel import WinSizeSpec, win_size_by_index
from repro.injection.outcome import Outcome, OutcomeCounts
from repro.stats import ProportionEstimate, wilson_proportion_interval


@dataclass(frozen=True)
class ExperimentRecord:
    """Compact per-experiment record kept for location-sensitive analyses."""

    first_dynamic_index: int
    first_slot: Optional[int]
    outcome: Outcome
    activated_errors: int

    def to_tuple(self) -> Tuple:
        return (
            self.first_dynamic_index,
            self.first_slot,
            self.outcome.value,
            self.activated_errors,
        )

    @classmethod
    def from_tuple(cls, data: Iterable) -> "ExperimentRecord":
        index, slot, outcome, activated = data
        return cls(index, slot, Outcome(outcome), activated)


def exhaustive_campaign_id(
    program: str, technique: str, mode: str, variant: str = ""
) -> str:
    """Store key of one exhaustive error-space campaign (single format)."""
    base = f"{program}/{technique}/single-bit-exhaustive/{mode}"
    return f"{base}[{variant}]" if variant else base


@dataclass
class ExhaustiveCampaignResult:
    """Weighted outcome counts of one exhaustive (or pruned) error-space run.

    Unlike a sampled :class:`CampaignResult`, the counts here cover the
    *entire* single-bit error space of a workload/technique pair: every
    error is accounted for exactly once, either by direct execution, by
    static inference, or by the weight of its equivalence-class
    representative (see :mod:`repro.errorspace`).  ``executed_experiments``
    records how many experiments actually ran; the provenance fields make
    the pruning auditable.
    """

    program: str
    technique: str
    #: "exhaustive" (every error executed), "pruned" (one representative per
    #: equivalence class) or "budgeted" (weighted sample of representatives).
    mode: str
    #: Size of the full single-bit error space (candidates × register bits).
    total_errors: int
    #: Number of candidate (instruction, slot) locations — Table II × slots.
    candidate_count: int
    executed_experiments: int
    #: Errors settled by static outcome inference (zero executions).
    inferred_errors: int
    #: Weighted counts over the full error space (total == total_errors for
    #: the exhaustive and pruned modes).
    outcome_counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    #: Validation sampler provenance (0/0 when validation was not requested).
    validation_sampled: int = 0
    validation_mispredicted: int = 0
    #: Distinguishes otherwise-identical modes run with different parameters
    #: (budget/seed/validation fraction); empty for parameter-free runs.
    variant: str = ""

    @property
    def campaign_id(self) -> str:
        return exhaustive_campaign_id(self.program, self.technique, self.mode, self.variant)

    @property
    def reduction_factor(self) -> float:
        """How many times fewer experiments ran than the space contains."""
        if self.executed_experiments <= 0:
            return float(self.total_errors) if self.total_errors else 1.0
        return self.total_errors / self.executed_experiments

    @property
    def misprediction_rate(self) -> float:
        if self.validation_sampled <= 0:
            return 0.0
        return self.validation_mispredicted / self.validation_sampled

    @property
    def sdc_percentage(self) -> float:
        return 100.0 * self.outcome_counts.sdc_fraction

    def sdc_estimate(self) -> ProportionEstimate:
        """SDC proportion; for exhaustive coverage the interval is the point."""
        return wilson_proportion_interval(
            self.outcome_counts.count(Outcome.SDC), self.outcome_counts.total
        )

    def to_dict(self) -> Dict:
        return {
            "program": self.program,
            "technique": self.technique,
            "mode": self.mode,
            "total_errors": self.total_errors,
            "candidate_count": self.candidate_count,
            "executed_experiments": self.executed_experiments,
            "inferred_errors": self.inferred_errors,
            "outcomes": self.outcome_counts.as_dict(),
            "validation_sampled": self.validation_sampled,
            "validation_mispredicted": self.validation_mispredicted,
            **({"variant": self.variant} if self.variant else {}),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExhaustiveCampaignResult":
        return cls(
            program=data["program"],
            technique=data["technique"],
            mode=data["mode"],
            total_errors=data["total_errors"],
            candidate_count=data["candidate_count"],
            executed_experiments=data["executed_experiments"],
            inferred_errors=data["inferred_errors"],
            outcome_counts=OutcomeCounts.from_mapping(data["outcomes"]),
            validation_sampled=data.get("validation_sampled", 0),
            validation_mispredicted=data.get("validation_mispredicted", 0),
            variant=data.get("variant", ""),
        )


@dataclass
class CampaignResult:
    """Aggregated results of one campaign."""

    config: CampaignConfig
    #: Concrete dynamic distance used (random win-size specs resolve per campaign).
    resolved_win_size: int
    outcome_counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    #: Histogram: number of activated errors -> experiment count.
    activated_histogram: Dict[int, int] = field(default_factory=dict)
    #: Per-experiment records (kept unless the caller disables them).
    records: List[ExperimentRecord] = field(default_factory=list)
    #: Cumulative wall-clock seconds per execution phase (restore /
    #: pre_window / window / tail), summed across batches.  Observability
    #: only: deliberately excluded from serialization, so stored results are
    #: byte-identical regardless of execution strategy or machine speed.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # -- incremental construction ------------------------------------------------
    def add_experiment(
        self,
        outcome: Outcome,
        activated_errors: int,
        first_dynamic_index: int,
        first_slot: Optional[int],
        *,
        keep_record: bool = True,
    ) -> None:
        self.outcome_counts.add(outcome)
        self.activated_histogram[activated_errors] = (
            self.activated_histogram.get(activated_errors, 0) + 1
        )
        if keep_record:
            self.records.append(
                ExperimentRecord(first_dynamic_index, first_slot, outcome, activated_errors)
            )

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        """Fold a partial result of the *same* campaign into this one.

        Parallel engines split a campaign into chunked batches; merging the
        picklable partials in submission order reassembles the exact record
        stream a serial run produces.
        """
        if other.config.campaign_id != self.config.campaign_id:
            raise AnalysisError(
                f"cannot merge results of campaign {other.config.campaign_id!r} "
                f"into {self.config.campaign_id!r}"
            )
        if other.resolved_win_size != self.resolved_win_size:
            raise AnalysisError(
                f"cannot merge partials with different resolved win-sizes "
                f"({self.resolved_win_size} != {other.resolved_win_size})"
            )
        self.outcome_counts = self.outcome_counts.merge(other.outcome_counts)
        for activated, count in other.activated_histogram.items():
            self.activated_histogram[activated] = (
                self.activated_histogram.get(activated, 0) + count
            )
        self.records.extend(other.records)
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        return self

    # -- derived quantities ----------------------------------------------------------
    @property
    def experiments(self) -> int:
        return self.outcome_counts.total

    @property
    def sdc_percentage(self) -> float:
        return 100.0 * self.outcome_counts.sdc_fraction

    @property
    def detection_percentage(self) -> float:
        return 100.0 * self.outcome_counts.detection_fraction

    @property
    def benign_percentage(self) -> float:
        return 100.0 * self.outcome_counts.benign_fraction

    def sdc_estimate(self) -> ProportionEstimate:
        """SDC proportion with its 95 % confidence interval."""
        return wilson_proportion_interval(
            self.outcome_counts.count(Outcome.SDC), self.outcome_counts.total
        )

    def outcome_percentage(self, outcome: Outcome) -> float:
        return 100.0 * self.outcome_counts.fraction(outcome)

    # -- serialization -----------------------------------------------------------------
    def to_partial_payload(self) -> Dict:
        """JSON-safe payload of one chunk partial for the chunk ledger.

        Round-trips through :meth:`from_partial_payload` to a partial that
        merges byte-identically to the original.  ``phase_seconds`` is
        intentionally dropped — it is machine-dependent accounting excluded
        from serialization everywhere.
        """
        return {
            "outcomes": self.outcome_counts.as_dict(),
            "activated_histogram": {
                str(k): self.activated_histogram[k]
                for k in sorted(self.activated_histogram)
            },
            "records": [list(record.to_tuple()) for record in self.records],
        }

    @classmethod
    def from_partial_payload(
        cls, config: CampaignConfig, resolved_win_size: int, payload: Dict
    ) -> "CampaignResult":
        """Rebuild a ledgered chunk partial (inverse of :meth:`to_partial_payload`)."""
        return cls(
            config=config,
            resolved_win_size=resolved_win_size,
            outcome_counts=OutcomeCounts.from_mapping(payload["outcomes"]),
            activated_histogram={
                int(k): v for k, v in payload["activated_histogram"].items()
            },
            records=[
                ExperimentRecord.from_tuple(item) for item in payload.get("records", [])
            ],
        )

    def to_dict(self) -> Dict:
        return {
            "program": self.config.program,
            "technique": self.config.technique,
            "max_mbf": self.config.max_mbf,
            "win_size_index": self.config.win_size.index,
            "experiments": self.config.experiments,
            "master_seed": self.config.master_seed,
            "resolved_win_size": self.resolved_win_size,
            "outcomes": self.outcome_counts.as_dict(),
            "activated_histogram": {
                str(k): self.activated_histogram[k] for k in sorted(self.activated_histogram)
            },
            "records": [record.to_tuple() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignResult":
        config = CampaignConfig(
            program=data["program"],
            technique=data["technique"],
            max_mbf=data["max_mbf"],
            win_size=win_size_by_index(data["win_size_index"]),
            experiments=data["experiments"],
            master_seed=data.get("master_seed", 2017),
        )
        result = cls(
            config=config,
            resolved_win_size=data["resolved_win_size"],
            outcome_counts=OutcomeCounts.from_mapping(data["outcomes"]),
            activated_histogram={int(k): v for k, v in data["activated_histogram"].items()},
            records=[ExperimentRecord.from_tuple(item) for item in data.get("records", [])],
        )
        return result


class ResultStore:
    """A collection of campaign results keyed by campaign id."""

    def __init__(self) -> None:
        self._results: Dict[str, CampaignResult] = {}
        self._exhaustive: Dict[str, ExhaustiveCampaignResult] = {}

    # -- mutation -----------------------------------------------------------------
    def add(self, result: CampaignResult) -> None:
        self._results[result.config.campaign_id] = result

    def add_exhaustive(self, result: ExhaustiveCampaignResult) -> None:
        self._exhaustive[result.campaign_id] = result

    def merge(self, other: "ResultStore") -> None:
        for result in other:
            self.add(result)
        for result in other.exhaustive_results():
            self.add_exhaustive(result)

    # -- access --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[CampaignResult]:
        return iter(self._results.values())

    def __contains__(self, config: Union[str, CampaignConfig]) -> bool:
        key = config if isinstance(config, str) else config.campaign_id
        return key in self._results

    def get(self, config: Union[str, CampaignConfig]) -> CampaignResult:
        key = config if isinstance(config, str) else config.campaign_id
        try:
            return self._results[key]
        except KeyError:
            raise AnalysisError(f"no result recorded for campaign {key!r}") from None

    def campaign_ids(self) -> List[str]:
        return list(self._results)

    # -- queries used by the analysis layer ----------------------------------------------
    def for_program(self, program: str) -> List[CampaignResult]:
        return [r for r in self if r.config.program == program]

    def for_technique(self, technique: str) -> List[CampaignResult]:
        return [r for r in self if r.config.technique == technique]

    def single_bit(
        self, program: str, technique: str
    ) -> CampaignResult:
        """The single bit-flip campaign for a program/technique pair."""
        matches = [
            r
            for r in self
            if r.config.program == program
            and r.config.technique == technique
            and r.config.is_single_bit
        ]
        if not matches:
            raise AnalysisError(
                f"no single bit-flip campaign for {program}/{technique} in the store"
            )
        return matches[0]

    def multi_bit(
        self,
        program: str,
        technique: str,
        *,
        same_register: Optional[bool] = None,
    ) -> List[CampaignResult]:
        """All multi-bit campaigns, optionally filtered by win-size = 0 or > 0."""
        matches = [
            r
            for r in self
            if r.config.program == program
            and r.config.technique == technique
            and not r.config.is_single_bit
        ]
        if same_register is True:
            matches = [r for r in matches if r.resolved_win_size == 0]
        elif same_register is False:
            matches = [r for r in matches if r.resolved_win_size > 0]
        return matches

    def programs(self) -> List[str]:
        seen: List[str] = []
        for result in self:
            if result.config.program not in seen:
                seen.append(result.config.program)
        return seen

    # -- exhaustive error-space results -------------------------------------------------
    def exhaustive_results(self) -> List[ExhaustiveCampaignResult]:
        return list(self._exhaustive.values())

    def has_exhaustive(
        self, program: str, technique: str, mode: str, variant: str = ""
    ) -> bool:
        return exhaustive_campaign_id(program, technique, mode, variant) in self._exhaustive

    def exhaustive(
        self, program: str, technique: str, mode: str, variant: str = ""
    ) -> ExhaustiveCampaignResult:
        key = exhaustive_campaign_id(program, technique, mode, variant)
        try:
            return self._exhaustive[key]
        except KeyError:
            raise AnalysisError(f"no exhaustive result recorded for {key!r}") from None

    # -- persistence ---------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the store to ``path`` atomically, in canonical form.

        Campaigns are ordered by id and histogram keys numerically, so the
        bytes depend only on the contents — save → load → save is byte-stable
        and serial/parallel sweeps of the same grid produce identical files.
        The write goes through a temporary sibling file and an atomic rename,
        with the file contents fsync'd before the rename and the containing
        directory fsync'd after it, so a mid-sweep checkpoint survives not
        just process death but power loss: either the old complete store or
        the new complete store is on disk, never a torn file.
        """
        ordered = [self._results[key] for key in sorted(self._results)]
        payload = {"version": 1, "campaigns": [result.to_dict() for result in ordered]}
        if self._exhaustive:
            # Key added only when present so pre-existing stores stay
            # byte-identical across load → save.
            payload["exhaustive_campaigns"] = [
                self._exhaustive[key].to_dict() for key in sorted(self._exhaustive)
            ]
        path = Path(path)
        tmp_path = path.with_name(path.name + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        try:
            dir_fd = os.open(path.parent or Path("."), os.O_RDONLY)
        except OSError:  # platforms/filesystems without directory fds
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - fsync unsupported on dirs here
            pass
        finally:
            os.close(dir_fd)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultStore":
        payload = json.loads(Path(path).read_text())
        store = cls()
        for item in payload.get("campaigns", []):
            store.add(CampaignResult.from_dict(item))
        for item in payload.get("exhaustive_campaigns", []):
            store.add_exhaustive(ExhaustiveCampaignResult.from_dict(item))
        return store
