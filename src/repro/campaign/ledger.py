"""Durable write-ahead chunk ledger for resumable campaign runs.

A campaign is executed as contiguous index chunks whose results merge
deterministically (per-experiment derived seeds, tick-sorted batches), so a
run can be reconstructed exactly from any set of completed chunk partials
covering the index space.  The ledger makes that durable: one JSONL file per
run — keyed by a content-addressed run key so a stale ledger can never leak
into a different campaign — records chunk *grants* (work handed to a worker)
and chunk *done* entries carrying the mergeable partial payload.

Record stream layout (one JSON object per line)::

    {"type": "header", "version": 1, "key": ..., "total": ..., "meta": {...}}
    {"type": "grant", "chunk": <start>, "count": <n>}
    {"type": "done",  "chunk": <start>, "count": <n>, "payload": {...}}
    {"type": "finished"}                      # appended by compaction only

``done`` lines are flushed and fsync'd before the supervisor considers the
chunk complete, so a SIGKILL'd run loses at most its in-flight chunks.
``grant`` lines are advisory (flushed, not fsync'd): they exist so an
operator reading the ledger can see what was in flight when a run died.
Loading tolerates exactly one truncated trailing line — the signature of a
crash mid-append — and rejects ledgers whose header does not match the
expected key/total (the run is then started fresh).

The format is shard-shaped by construction: the distributed coordinator
(:mod:`repro.dist`) records remote completions into the very same ledger, so
resuming an N-host run is the same interval-complement computation as
resuming a local one.

On a clean finish the ledger is *compacted*: the grant/done/retry churn is
rewritten to the run's merged interval set (one ``done`` record covering the
whole index space) plus a ``finished`` marker.  A compacted ledger still
resumes byte-identically — it simply replays one merged partial — and the
marker lets :func:`sweep_finished_ledgers` prune old completed runs the way
the artifact cache sweeps stale ``.tmp`` files.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, IO, Iterable, List, Optional, Tuple

from repro.telemetry.events import SCAN_CORRUPT, scan_jsonl, trim_torn_tail

LEDGER_VERSION = 1

#: Age (seconds) after which a *finished* (compacted) ledger is swept.
FINISHED_LEDGER_MAX_AGE = 24 * 3600.0


def sweep_finished_ledgers(
    directory: Path, *, max_age_seconds: float = FINISHED_LEDGER_MAX_AGE
) -> int:
    """Prune compacted ledgers of finished runs older than ``max_age_seconds``.

    Mirrors the artifact cache's stale-``.tmp`` sweeper: best-effort, never
    raises, spares anything young enough that an operator might still want
    to ``--resume`` or inspect it.  Only ledgers ending with the compaction
    ``finished`` marker are candidates — an interrupted run's ledger is
    load-bearing state and is never touched.  Returns the number removed.
    """
    try:
        entries = list(Path(directory).glob("*.jsonl"))
    except OSError:
        return 0
    cutoff = time.time() - max_age_seconds
    removed = 0
    for path in entries:
        try:
            if path.stat().st_mtime > cutoff:
                continue
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                handle.seek(max(0, handle.tell() - 4096))
                tail = handle.read()
        except OSError:
            continue
        finished = False
        for line in reversed(tail.splitlines()):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                break
            finished = isinstance(record, dict) and record.get("type") == "finished"
            break
        if finished:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def missing_intervals(
    total: int, covered: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Complement of ``covered`` ``(start, count)`` intervals in ``[0, total)``.

    Overlapping or unsorted covered intervals are tolerated (later grants of
    a bisected chunk overlap the original grant's range).
    """
    spans = sorted((start, start + count) for start, count in covered if count > 0)
    gaps: List[Tuple[int, int]] = []
    cursor = 0
    for lo, hi in spans:
        if lo > cursor:
            gaps.append((cursor, min(lo, total) - cursor))
        cursor = max(cursor, hi)
        if cursor >= total:
            break
    if cursor < total:
        gaps.append((cursor, total - cursor))
    return [gap for gap in gaps if gap[1] > 0]


def chunk_intervals(
    intervals: Iterable[Tuple[int, int]], chunk: int
) -> List[Tuple[int, int]]:
    """Split ``(start, count)`` intervals into pieces of at most ``chunk``."""
    if chunk < 1:
        chunk = 1
    pieces: List[Tuple[int, int]] = []
    for start, count in intervals:
        offset = start
        remaining = count
        while remaining > 0:
            size = min(chunk, remaining)
            pieces.append((offset, size))
            offset += size
            remaining -= size
    return pieces


class ChunkLedger:
    """Append-only JSONL ledger for one campaign run.

    Use :meth:`open` — it owns the resume-vs-fresh decision.  The instance
    keeps its file handle open for the lifetime of the run; every ``done``
    append is flushed and fsync'd before returning.
    """

    def __init__(
        self,
        path: Path,
        key: str,
        total: int,
        meta: Optional[dict] = None,
    ) -> None:
        self.path = path
        self.key = key
        self.total = total
        self.meta = dict(meta or {})
        #: Completed chunk payloads loaded from disk, keyed by start index.
        self.completed: Dict[int, dict] = {}
        #: ``(start, count)`` of every completed chunk, resume grid included.
        self.completed_intervals: List[Tuple[int, int]] = []
        self._handle: Optional[IO[str]] = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: Path,
        key: str,
        *,
        total: int,
        meta: Optional[dict] = None,
        resume: bool = False,
    ) -> "ChunkLedger":
        """Open (and on resume, replay) the ledger for ``key``.

        Without ``resume`` any existing file for the key is truncated: a new
        run must never silently adopt chunks from an earlier invocation the
        caller did not ask to continue.  With ``resume``, completed chunks
        are loaded and exposed via :attr:`completed`; an unreadable or
        mismatched ledger degrades to a fresh run rather than failing.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Opportunistic GC, artifact-cache style: opening any ledger sweeps
        # siblings whose runs finished long ago (compaction marked them).
        sweep_finished_ledgers(directory)
        ledger = cls(directory / f"{key}.jsonl", key, total, meta)
        if resume:
            ledger._load_existing()
        # Anything short of a successful replay starts a fresh file: a new
        # run must never append after a mismatched or corrupt header.
        ledger._open_for_append(fresh=not ledger.completed)
        return ledger

    def _load_existing(self) -> None:
        try:
            raw = self.path.read_text()
        except OSError:
            return
        lines = raw.splitlines()
        if not lines:
            return
        # Shared tolerant scan (same crash semantics as the run-event log):
        # a torn trailing line is the signature of a killed append and is
        # dropped; corruption anywhere earlier means trust nothing.
        records, status = scan_jsonl(lines)
        if status == SCAN_CORRUPT or not records:
            return
        header = records[0]
        if (
            header.get("type") != "header"
            or header.get("version") != LEDGER_VERSION
            or header.get("key") != self.key
            or header.get("total") != self.total
        ):
            return
        completed: Dict[int, dict] = {}
        for record in records[1:]:
            if record.get("type") != "done":
                continue
            chunk = record.get("chunk")
            count = record.get("count")
            payload = record.get("payload")
            if not isinstance(chunk, int) or not isinstance(count, int):
                return
            completed[chunk] = {"count": count, "payload": payload}
        self.completed = {
            chunk: entry["payload"] for chunk, entry in completed.items()
        }
        self.completed_intervals = sorted(
            (chunk, entry["count"]) for chunk, entry in completed.items()
        )

    def _open_for_append(self, *, fresh: bool) -> None:
        if fresh or not self.path.exists():
            handle = open(self.path, "w", encoding="utf-8")
            handle.write(
                json.dumps(
                    {
                        "type": "header",
                        "version": LEDGER_VERSION,
                        "key": self.key,
                        "total": self.total,
                        "meta": self.meta,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())
            self._handle = handle
        else:
            # A torn trailing line (killed mid-append) was dropped by the
            # replay scan; drop it on disk too, or the next append would
            # fuse with it and corrupt the ledger for every later load.
            trim_torn_tail(self.path)
            self._handle = open(self.path, "a", encoding="utf-8")

    # -- queries ------------------------------------------------------------------

    def missing(self, chunk: int) -> List[Tuple[int, int]]:
        """``(start, count)`` work intervals not yet completed, chunked."""
        return chunk_intervals(
            missing_intervals(self.total, self.completed_intervals), chunk
        )

    @property
    def loaded_units(self) -> int:
        """Total experiments/errors covered by chunks replayed from disk."""
        return sum(count for _, count in self.completed_intervals)

    # -- appends ------------------------------------------------------------------

    def record_grant(self, chunk: int, count: int) -> None:
        """Note that a chunk was handed to a worker (advisory, not fsync'd)."""
        if self._handle is None:
            return
        self._handle.write(
            json.dumps({"type": "grant", "chunk": chunk, "count": count}) + "\n"
        )
        self._handle.flush()

    def record_done(self, chunk: int, count: int, payload: dict) -> None:
        """Durably record a completed chunk's mergeable partial payload."""
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(
                {"type": "done", "chunk": chunk, "count": count, "payload": payload},
                sort_keys=True,
            )
            + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def compact(self, records: Iterable[Tuple[int, int, dict]]) -> bool:
        """Rewrite the ledger to its merged interval set (clean-finish GC).

        ``records`` is the run's coverage as ``(chunk, count, payload)``
        triples — for a finished run, typically one record spanning the full
        index space with the merged partial payload.  The rewrite is atomic
        (tmp + fsync + rename) and appends a ``finished`` marker so
        :func:`sweep_finished_ledgers` can prune the file later; a resumed
        run replaying a compacted ledger assembles byte-identical results
        from the merged payload.  Closes the ledger; returns False (leaving
        the original file intact) on any I/O failure.
        """
        self.close()
        tmp = self.path.with_name(f".tmp-compact-{os.getpid()}-{self.path.name}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(
                        {
                            "type": "header",
                            "version": LEDGER_VERSION,
                            "key": self.key,
                            "total": self.total,
                            "meta": self.meta,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
                for chunk, count, payload in records:
                    handle.write(
                        json.dumps(
                            {
                                "type": "done",
                                "chunk": chunk,
                                "count": count,
                                "payload": payload,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                handle.write(json.dumps({"type": "finished"}) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            return True
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None

    def discard(self) -> None:
        """Close and delete the ledger file (the run completed and was saved)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "ChunkLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChunkLedger {self.path.name} total={self.total} "
            f"loaded={len(self.completed)}>"
        )
