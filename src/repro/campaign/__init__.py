"""Campaign engine: runs sets of fault-injection experiments.

A *campaign* is a set of experiments using the same fault model on a given
workload (§III-E); the paper runs 182 campaigns per program (2 single-bit +
2 × 90 multi-bit clusters) with 10,000 experiments each.  This package
provides:

* :mod:`repro.campaign.config` — campaign configurations, experiment scales
  (SMOKE / BENCH / PAPER), and deterministic seeding;
* :mod:`repro.campaign.plan` — helpers that expand a program list into the
  campaign grids behind each figure of the paper;
* :mod:`repro.campaign.engine` — pluggable execution engines (serial and
  multiprocess worker pool) with deterministic per-experiment seeding;
* :mod:`repro.campaign.supervisor` — fault-tolerant chunk dispatch over raw
  worker processes (crash detection, retries, bisection, quarantine);
* :mod:`repro.campaign.ledger` — durable write-ahead chunk ledger enabling
  ``--resume`` after a killed run;
* :mod:`repro.campaign.runner` — executes campaigns and collects results;
* :mod:`repro.campaign.results` — per-campaign aggregates and a queryable,
  JSON-serialisable result store.
"""

from repro.campaign.config import (
    BENCH_SCALE,
    CampaignConfig,
    ExperimentScale,
    PAPER_SCALE,
    SMOKE_SCALE,
)
from repro.campaign.engine import (
    DispatchRequest,
    DispatchTransport,
    EngineProgress,
    ExecutionEngine,
    MultiprocessEngine,
    RegistryProvider,
    SerialEngine,
    SupervisedPoolTransport,
)
from repro.campaign.plan import (
    ExhaustiveCampaignRequest,
    exhaustive_campaigns,
    full_paper_grid,
    multi_register_campaigns,
    same_register_campaigns,
    single_bit_campaigns,
)
from repro.campaign.ledger import ChunkLedger
from repro.campaign.results import (
    CampaignResult,
    ExhaustiveCampaignResult,
    ResultStore,
)
from repro.campaign.runner import CampaignRunner
from repro.campaign.supervisor import ChunkSupervisor, ChunkTask, SupervisorStats

__all__ = [
    "BENCH_SCALE",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "ChunkLedger",
    "ChunkSupervisor",
    "ChunkTask",
    "DispatchRequest",
    "DispatchTransport",
    "EngineProgress",
    "ExecutionEngine",
    "ExhaustiveCampaignRequest",
    "ExhaustiveCampaignResult",
    "exhaustive_campaigns",
    "ExperimentScale",
    "full_paper_grid",
    "multi_register_campaigns",
    "MultiprocessEngine",
    "PAPER_SCALE",
    "RegistryProvider",
    "ResultStore",
    "same_register_campaigns",
    "SerialEngine",
    "single_bit_campaigns",
    "SMOKE_SCALE",
    "SupervisedPoolTransport",
    "SupervisorStats",
]
