"""Campaign plans: expand program lists into the paper's campaign grids.

Each helper corresponds to a slice of the paper's evaluation:

* :func:`single_bit_campaigns` — the two single bit-flip campaigns per
  program behind Fig. 1 (and the baselines of every later comparison);
* :func:`same_register_campaigns` — the win-size = 0 grid behind Fig. 2;
* :func:`multi_register_campaigns` — the win-size > 0 grid behind Figs. 4/5;
* :func:`full_paper_grid` — all 182 campaigns per program;
* :func:`exhaustive_campaigns` — full error-space (optionally pruned)
  single-bit campaigns per program, the §IV-C scalability mode executed by
  :meth:`repro.experiments.session.ExperimentSession.run_exhaustive`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.campaign.config import CampaignConfig, ExperimentScale, SMOKE_SCALE
from repro.injection.faultmodel import (
    MAX_MBF_VALUES,
    SINGLE_BIT_MAX_MBF,
    WIN_SIZE_SPECS,
    WinSizeSpec,
    win_size_by_index,
)
from repro.injection.techniques import TECHNIQUES

_ZERO_WINDOW = win_size_by_index("w1")


def _technique_names(techniques: Optional[Sequence[str]]) -> List[str]:
    if techniques is None:
        return [technique.name for technique in TECHNIQUES]
    return list(techniques)


def single_bit_campaigns(
    programs: Sequence[str],
    scale: ExperimentScale = SMOKE_SCALE,
    *,
    techniques: Optional[Sequence[str]] = None,
    master_seed: int = 2017,
) -> List[CampaignConfig]:
    """The single bit-flip campaign for every program × technique (Fig. 1)."""
    return [
        CampaignConfig(
            program=program,
            technique=technique,
            max_mbf=SINGLE_BIT_MAX_MBF,
            win_size=_ZERO_WINDOW,
            experiments=scale.experiments_per_campaign,
            master_seed=master_seed,
        )
        for program in programs
        for technique in _technique_names(techniques)
    ]


def same_register_campaigns(
    programs: Sequence[str],
    scale: ExperimentScale = SMOKE_SCALE,
    *,
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
    techniques: Optional[Sequence[str]] = None,
    master_seed: int = 2017,
) -> List[CampaignConfig]:
    """Multi-bit campaigns with win-size = 0 (Fig. 2's same-register study)."""
    return [
        CampaignConfig(
            program=program,
            technique=technique,
            max_mbf=max_mbf,
            win_size=_ZERO_WINDOW,
            experiments=scale.experiments_per_campaign,
            master_seed=master_seed,
        )
        for program in programs
        for technique in _technique_names(techniques)
        for max_mbf in max_mbf_values
    ]


def multi_register_campaigns(
    programs: Sequence[str],
    scale: ExperimentScale = SMOKE_SCALE,
    *,
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
    win_size_specs: Optional[Sequence[WinSizeSpec]] = None,
    techniques: Optional[Sequence[str]] = None,
    master_seed: int = 2017,
) -> List[CampaignConfig]:
    """Multi-bit campaigns with win-size > 0 (Figs. 4 and 5)."""
    if win_size_specs is None:
        win_size_specs = [
            spec for spec in WIN_SIZE_SPECS if spec.is_random or spec.value != 0
        ]
    return [
        CampaignConfig(
            program=program,
            technique=technique,
            max_mbf=max_mbf,
            win_size=win_size,
            experiments=scale.experiments_per_campaign,
            master_seed=master_seed,
        )
        for program in programs
        for technique in _technique_names(techniques)
        for max_mbf in max_mbf_values
        for win_size in win_size_specs
    ]


@dataclass(frozen=True)
class ExhaustiveCampaignRequest:
    """One exhaustive (or pruned) single-bit error-space campaign to run.

    ``mode`` selects how much of the space executes: ``"exhaustive"`` runs
    every error, ``"pruned"`` one representative per def-use equivalence
    class (statically inferred errors run nothing), ``"budgeted"`` a
    weighted sample of ``budget`` representatives.  ``validate`` re-runs a
    seeded fraction of non-representative class members to measure the
    misprediction rate of the pruning.
    """

    program: str
    technique: str = "inject-on-read"
    mode: str = "pruned"
    budget: Optional[int] = None
    validate: float = 0.0
    seed: int = 2017


def exhaustive_campaigns(
    programs: Sequence[str],
    *,
    techniques: Optional[Sequence[str]] = None,
    mode: str = "pruned",
    budget: Optional[int] = None,
    validate: float = 0.0,
    seed: int = 2017,
) -> List[ExhaustiveCampaignRequest]:
    """Exhaustive error-space campaign requests for program × technique."""
    return [
        ExhaustiveCampaignRequest(
            program=program,
            technique=technique,
            mode=mode,
            budget=budget,
            validate=validate,
            seed=seed,
        )
        for program in programs
        for technique in _technique_names(techniques)
    ]


def full_paper_grid(
    programs: Sequence[str],
    scale: ExperimentScale = SMOKE_SCALE,
    *,
    master_seed: int = 2017,
) -> List[CampaignConfig]:
    """All 182 campaigns per program: 2 single-bit + 2 × 90 multi-bit."""
    campaigns = single_bit_campaigns(programs, scale, master_seed=master_seed)
    campaigns += same_register_campaigns(programs, scale, master_seed=master_seed)
    campaigns += multi_register_campaigns(programs, scale, master_seed=master_seed)
    return campaigns
