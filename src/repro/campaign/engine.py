"""Pluggable campaign execution engines.

A campaign is an embarrassingly parallel bag of experiments: every experiment
is fully determined by ``CampaignConfig.experiment_seed(index)``, so the only
shared state a worker needs is the compiled workload and its golden trace.
This module exploits that with two interchangeable backends:

* :class:`SerialEngine` — runs every experiment in-process, in index order;
* :class:`MultiprocessEngine` — fans chunked experiment batches out to
  supervised worker processes (:mod:`repro.campaign.supervisor`); each worker
  builds the compiled workload + golden trace once (LLFI's
  profile-once/inject-many split, batch-dispatched) and returns picklable
  partial :class:`~repro.campaign.results.CampaignResult` objects that the
  parent merges in index order.

Because seeds are derived per experiment index rather than drawn from one
sequential stream, both engines produce bit-identical results for the same
configuration, and any experiment can be replayed in isolation by index.

Fault tolerance (both engines, all three dispatch paths — experiments,
exhaustive errors, planner inference):

* dead or wedged workers are detected, killed and replaced; their chunks are
  retried with capped exponential backoff, bisected down to the offending
  experiment when they keep failing, and quarantined with the ``crashed``
  outcome (or raised, under ``--no-quarantine``);
* with a ledger directory configured, every completed chunk's mergeable
  partial is appended to a durable write-ahead ledger
  (:mod:`repro.campaign.ledger`), so a killed run restarted with
  ``resume=True`` executes only the missing chunks and assembles a result
  byte-identical to an uninterrupted run;
* SIGINT/SIGTERM drain in-flight chunks, flush the ledger and raise
  :class:`~repro.errors.CampaignInterrupted`; repeated worker crashes
  degrade the pooled engine to in-process serial execution with a warning
  instead of dying.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.config import CampaignConfig
from repro.campaign.ledger import ChunkLedger
from repro.campaign.results import CampaignResult
from repro.campaign.supervisor import (
    ChunkSupervisor,
    ChunkTask,
    SupervisorStats,
    _SignalGuard,
)
from repro.errors import (
    CampaignExecutionError,
    CampaignInterrupted,
    ConfigurationError,
    ReproError,
)
from repro.injection.experiment import ExperimentResult, ExperimentRunner
from repro.injection.faultmodel import FaultSpec
from repro.injection.outcome import Outcome
from repro.injection.techniques import technique_by_name
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry.events import RunLog

#: A provider maps a program name to a ready-to-use ExperimentRunner.
RunnerProvider = Callable[[str], ExperimentRunner]


def registry_provider(program_name: str) -> ExperimentRunner:
    """Resolve programs through the benchmark registry (imported lazily)."""
    from repro.programs.registry import get_experiment_runner

    return get_experiment_runner(program_name)


@dataclass(frozen=True)
class RegistryProvider:
    """A registry provider with execution knobs, picklable for worker pools.

    ``fast_forward`` / ``checkpoint_interval`` / ``windowed`` parameterise
    the :class:`~repro.injection.experiment.ExperimentRunner` each worker
    builds (the CLI's ``--no-fast-forward`` / ``--checkpoint-interval`` /
    ``--no-windowed`` land here).  ``cache_dir`` points workers at the
    persistent artifact cache (:mod:`repro.artifacts`), so spawned processes
    warm up from disk instead of re-deriving golden traces, checkpoints,
    def-use indices and generated backend source.  ``backend`` selects the
    execution engine each worker's runner uses (``decoded``, ``compiled`` or
    ``reference``).
    """

    fast_forward: bool = True
    checkpoint_interval: Optional[int] = None
    cache_dir: Optional[str] = None
    backend: str = "decoded"
    windowed: bool = True

    def prepare(self) -> None:
        """Activate this provider's artifact cache in the current process.

        Also sweeps stale temporary files left behind by cache writers that
        were SIGKILLed mid-store — restarted (``--resume``) runs reclaim the
        space and never mistake a torn ``.tmp`` for a real artifact.
        """
        if self.cache_dir is not None:
            from repro import artifacts

            artifacts.configure(self.cache_dir)
            cache = artifacts.active_cache()
            if cache is not None:
                cache.sweep_stale_tmp()

    def __call__(self, program_name: str) -> ExperimentRunner:
        from repro.programs.registry import get_experiment_runner

        self.prepare()
        return get_experiment_runner(
            program_name,
            fast_forward=self.fast_forward,
            checkpoint_interval=self.checkpoint_interval,
            backend=self.backend,
            windowed=self.windowed,
        )


class CachingProvider:
    """Caches one ExperimentRunner per workload around any provider.

    A cached runner bundles everything a worker needs per workload: the
    compiled module, its decoded executable form
    (:attr:`~repro.injection.experiment.ExperimentRunner.decoded`) and the
    golden trace — so compile, decode and profile all happen once per
    process, and every experiment only pays for execution.

    Picklable as long as the wrapped provider is: the cache is dropped when
    the wrapper crosses a process boundary (compiled workloads are heavy and
    each worker profiles its own), so the default registry provider survives
    even ``spawn``-based pools.  Under ``fork``, workers inherit a warmed
    cache — decoded program and golden trace included — and skip all three
    steps entirely.
    """

    def __init__(self, provider: Optional[RunnerProvider] = None) -> None:
        self._provider = provider or registry_provider
        self._cache: dict = {}

    def __call__(self, program_name: str) -> ExperimentRunner:
        if program_name not in self._cache:
            self._cache[program_name] = self._provider(program_name)
        return self._cache[program_name]

    def __getstate__(self):
        return {"_provider": self._provider, "_cache": {}}


@dataclass(frozen=True)
class EngineProgress:
    """A progress snapshot emitted while a campaign executes."""

    campaign_id: str
    done: int
    total: int
    elapsed_seconds: float

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def experiments_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.done / self.elapsed_seconds

    @property
    def eta_seconds(self) -> Optional[float]:
        rate = self.experiments_per_second
        if rate <= 0.0:
            return None
        return (self.total - self.done) / rate


ProgressCallback = Callable[[EngineProgress], None]


def _phase_snapshot(runner: ExperimentRunner) -> dict:
    """Copy a runner's cumulative per-phase timers (missing on stubs: {})."""
    return dict(getattr(runner, "phase_seconds", None) or {})


def _phase_delta(runner: ExperimentRunner, before: dict) -> dict:
    """Per-phase seconds spent on ``runner`` since ``before`` was snapshot."""
    return {
        phase: total - before.get(phase, 0.0)
        for phase, total in _phase_snapshot(runner).items()
    }


def _merged_phase_seconds(partials: Iterable["CampaignResult"]) -> dict:
    """Summed per-phase seconds across partial results (any order)."""
    totals: dict = {}
    for partial in partials:
        for phase, seconds in partial.phase_seconds.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return totals


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, e.g. inside containers)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def run_experiment_batch(
    runner: ExperimentRunner,
    config: CampaignConfig,
    resolved_win_size: int,
    start: int,
    count: int,
    *,
    keep_records: bool = True,
) -> CampaignResult:
    """Run experiments ``start .. start+count`` and return a partial result.

    Each experiment draws its own RNG from the campaign's derived seed for
    that index, so batches may execute in any order, on any process, and
    still reproduce exactly the same faults.

    Execution order within the batch is an implementation detail the results
    cannot observe: specs are sampled up front and *executed* sorted by first
    injection tick — consecutive experiments then restore from the same
    fast-forward checkpoint — while aggregation happens in submission order
    (a stable sort merged back), so the partial result is byte-identical to
    naive index-order execution.
    """
    technique = technique_by_name(config.technique)
    partial = CampaignResult(config=config, resolved_win_size=resolved_win_size)
    specs = [
        runner.seeded_spec(
            technique,
            max_mbf=config.max_mbf,
            win_size=resolved_win_size,
            seed=config.experiment_seed(index),
        )
        for index in range(start, start + count)
    ]
    order = sorted(range(len(specs)), key=lambda j: specs[j].first_dynamic_index)
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    phase_before = _phase_snapshot(runner)
    for j in order:
        results[j] = runner.run_spec(specs[j])
    partial.phase_seconds = _phase_delta(runner, phase_before)
    for experiment in results:
        partial.add_experiment(
            outcome=experiment.outcome,
            activated_errors=experiment.activated_errors,
            first_dynamic_index=experiment.spec.first_dynamic_index,
            first_slot=experiment.spec.first_slot,
            keep_record=keep_records,
        )
    return partial


def run_error_batch(
    runner: ExperimentRunner,
    technique_name: str,
    errors: Sequence[Tuple[int, Optional[int], int]],
) -> List[Outcome]:
    """Execute one batch of exhaustive single-bit errors; outcomes in order.

    Each error is a fully deterministic ``(dynamic_index, slot, bit)``
    triple (no RNG is consumed: the bit is pinned).  Like sampled batches,
    execution happens sorted by injection tick so consecutive experiments
    restore from the same fast-forward checkpoint, and results are merged
    back to submission order.
    """
    order = sorted(range(len(errors)), key=lambda j: errors[j][0])
    outcomes: List[Optional[Outcome]] = [None] * len(errors)
    for j in order:
        dynamic_index, slot, bit = errors[j]
        spec = FaultSpec(
            technique=technique_name,
            first_dynamic_index=dynamic_index,
            first_slot=slot,
            max_mbf=1,
            win_size=0,
            seed=0,
            first_bit=bit,
        )
        outcomes[j] = runner.run_spec(spec).outcome
    return outcomes


def persist_runner_artifacts(runner: ExperimentRunner) -> None:
    """Push a warm runner's derived artifacts into the artifact cache.

    Golden trace + checkpoints (fast-forwarding runners) and generated
    backend source (compiled runners).  No-op when no cache is active.
    Called by pooled engines before dispatch, so derivation happens once per
    host and spawned workers (which share only the disk) warm up from the
    cache.
    """
    if getattr(runner, "backend", None) == "compiled":
        from repro.vm.codegen import persist_compiled_source

        persist_compiled_source(runner.program.module)
    if not getattr(runner, "fast_forward", False):
        return
    from repro.vm.snapshot import persist_cached_golden

    persist_cached_golden(
        runner.program.module,
        entry=runner.program.entry,
        args=tuple(runner.args),
        checkpoint_interval=runner.checkpoint_interval,
        max_checkpoints=runner.max_checkpoints,
    )


# -- fault-tolerance plumbing shared by both engines --------------------------------


def _run_key(kind: str, fingerprint: str, identity: dict) -> str:
    """Content-addressed ledger key: workload identity + run identity."""
    blob = json.dumps(
        {"kind": kind, "fingerprint": fingerprint, **identity}, sort_keys=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _errors_digest(errors: Sequence[Tuple[int, Optional[int], int]]) -> str:
    digest = hashlib.sha256()
    for dynamic_index, slot, bit in errors:
        digest.update(
            f"{dynamic_index}:{'' if slot is None else slot}:{bit};".encode("ascii")
        )
    return digest.hexdigest()


def _module_fingerprint(runner: ExperimentRunner) -> str:
    from repro import artifacts

    return artifacts.module_fingerprint(runner.program.module)


def _open_campaign_ledger(
    ledger_dir: str,
    *,
    resume: bool,
    runner: ExperimentRunner,
    config: CampaignConfig,
    resolved_win_size: int,
    keep_records: bool,
    chunk: int,
) -> ChunkLedger:
    key = _run_key(
        "campaign",
        _module_fingerprint(runner),
        {
            "campaign_id": config.campaign_id,
            "master_seed": config.master_seed,
            "experiments": config.experiments,
            "resolved_win_size": resolved_win_size,
            "keep_records": bool(keep_records),
        },
    )
    return ChunkLedger.open(
        Path(ledger_dir),
        key,
        total=config.experiments,
        meta={"kind": "campaign", "campaign_id": config.campaign_id, "chunk": chunk},
        resume=resume,
    )


def _open_errors_ledger(
    ledger_dir: str,
    *,
    resume: bool,
    runner: ExperimentRunner,
    program: str,
    technique: str,
    errors: Sequence[Tuple[int, Optional[int], int]],
    chunk: int,
) -> ChunkLedger:
    key = _run_key(
        "errors",
        _module_fingerprint(runner),
        {
            "program": program,
            "technique": technique,
            "errors": _errors_digest(errors),
            "total": len(errors),
        },
    )
    return ChunkLedger.open(
        Path(ledger_dir),
        key,
        total=len(errors),
        meta={
            "kind": "errors",
            "campaign_id": f"{program}/{technique}/error-space",
            "chunk": chunk,
        },
        resume=resume,
    )


def _crashed_partial(
    runner: ExperimentRunner,
    config: CampaignConfig,
    resolved_win_size: int,
    start: int,
    count: int,
    *,
    keep_records: bool,
) -> CampaignResult:
    """Partial result recording quarantined experiments as ``crashed``.

    The fault location is recoverable without executing anything: sampling a
    spec only consumes the derived seed, so quarantined records still carry
    the (first_dynamic_index, first_slot) the experiment would have injected
    at, and location-sensitive analyses stay meaningful.
    """
    technique = technique_by_name(config.technique)
    partial = CampaignResult(config=config, resolved_win_size=resolved_win_size)
    for index in range(start, start + count):
        first_dynamic_index, first_slot = 0, None
        try:
            spec = runner.seeded_spec(
                technique,
                max_mbf=config.max_mbf,
                win_size=resolved_win_size,
                seed=config.experiment_seed(index),
            )
            first_dynamic_index = spec.first_dynamic_index
            first_slot = spec.first_slot
        except Exception:  # sampling itself is poisoned: record location-less
            pass
        partial.add_experiment(
            outcome=Outcome.CRASHED,
            activated_errors=0,
            first_dynamic_index=first_dynamic_index,
            first_slot=first_slot,
            keep_record=keep_records,
        )
    return partial


def _guarded_experiment_batch(
    runner: ExperimentRunner,
    config: CampaignConfig,
    resolved_win_size: int,
    start: int,
    count: int,
    *,
    keep_records: bool,
    quarantine: bool,
    stats: SupervisorStats,
) -> CampaignResult:
    """In-process batch execution that survives poisoned experiments.

    Library-level errors (:class:`ReproError`) propagate — they mean the
    campaign itself is misconfigured.  Anything else is treated like a
    worker crash: the batch is bisected down to the offending experiment,
    which is quarantined as ``crashed`` (or raised under no-quarantine).
    """
    try:
        return run_experiment_batch(
            runner, config, resolved_win_size, start, count, keep_records=keep_records
        )
    except (KeyboardInterrupt, SystemExit, ReproError):
        raise
    except Exception as exc:
        if count == 1:
            if not quarantine:
                raise CampaignExecutionError(
                    f"experiment {start} of {config.campaign_id} failed and "
                    f"quarantine is disabled: {exc!r}"
                ) from exc
            stats.quarantined_units += 1
            return _crashed_partial(
                runner, config, resolved_win_size, start, 1, keep_records=keep_records
            )
        stats.bisections += 1
        half = count // 2
        left = _guarded_experiment_batch(
            runner,
            config,
            resolved_win_size,
            start,
            half,
            keep_records=keep_records,
            quarantine=quarantine,
            stats=stats,
        )
        right = _guarded_experiment_batch(
            runner,
            config,
            resolved_win_size,
            start + half,
            count - half,
            keep_records=keep_records,
            quarantine=quarantine,
            stats=stats,
        )
        return left.merge(right)


def _guarded_error_values(
    runner: ExperimentRunner,
    technique_name: str,
    errors: Sequence[Tuple[int, Optional[int], int]],
    *,
    quarantine: bool,
    stats: SupervisorStats,
) -> List[str]:
    """Crash-guarded :func:`run_error_batch` returning outcome values."""
    try:
        return [outcome.value for outcome in run_error_batch(runner, technique_name, errors)]
    except (KeyboardInterrupt, SystemExit, ReproError):
        raise
    except Exception as exc:
        if len(errors) == 1:
            if not quarantine:
                raise CampaignExecutionError(
                    f"error {errors[0]!r} failed and quarantine is disabled: {exc!r}"
                ) from exc
            stats.quarantined_units += 1
            return [Outcome.CRASHED.value]
        stats.bisections += 1
        half = len(errors) // 2
        return _guarded_error_values(
            runner, technique_name, errors[:half], quarantine=quarantine, stats=stats
        ) + _guarded_error_values(
            runner, technique_name, errors[half:], quarantine=quarantine, stats=stats
        )


# -- supervised worker entry points -------------------------------------------------
#
# Supervised workers receive ``(fn, chunk_id, payload)`` messages; ``fn`` is
# one of the module-level chunk functions below and ``state`` is whatever the
# initializer returned (an ExperimentRunner or an OutcomeInference engine).


def _initialise_supervised_runner(
    provider: Optional[RunnerProvider], program_name: str
) -> ExperimentRunner:
    return (provider or registry_provider)(program_name)


def _experiment_chunk(runner: ExperimentRunner, payload) -> CampaignResult:
    config, resolved_win_size, start, count, keep_records = payload
    return run_experiment_batch(
        runner, config, resolved_win_size, start, count, keep_records=keep_records
    )


def _error_chunk(runner: ExperimentRunner, payload) -> Tuple[List[str], dict]:
    technique, errors = payload
    phase_before = _phase_snapshot(runner)
    values = [outcome.value for outcome in run_error_batch(runner, technique, errors)]
    return values, _phase_delta(runner, phase_before)


def _initialise_supervised_inference(provider, program_name: str):
    """Build (or cache-load) the def-use index + inference engine once."""
    if provider is not None and hasattr(provider, "prepare"):
        provider.prepare()
    from repro.errorspace.inference import OutcomeInference
    from repro.programs.registry import get_defuse_index

    return OutcomeInference(get_defuse_index(program_name))


def _infer_chunk(engine, triples) -> List[Optional[Outcome]]:
    from repro.errorspace.enumerate import SingleBitError

    return [
        engine.infer(
            SingleBitError(
                ordinal=0,
                dynamic_index=dynamic_index,
                slot=slot,
                bit=bit,
                register_bits=0,
                opcode="",
            )
        )
        for dynamic_index, slot, bit in triples
    ]


def _split_experiment_task(task: ChunkTask) -> List[ChunkTask]:
    config, resolved, start, count, keep_records = task.payload
    half = count // 2
    return [
        ChunkTask(start, task.fn, (config, resolved, start, half, keep_records), half),
        ChunkTask(
            start + half,
            task.fn,
            (config, resolved, start + half, count - half, keep_records),
            count - half,
        ),
    ]


def _split_error_task(task: ChunkTask) -> List[ChunkTask]:
    technique, errors = task.payload
    half = len(errors) // 2
    return [
        ChunkTask(task.chunk_id, task.fn, (technique, errors[:half]), half),
        ChunkTask(
            task.chunk_id + half,
            task.fn,
            (technique, errors[half:]),
            len(errors) - half,
        ),
    ]


def _split_infer_task(task: ChunkTask) -> List[ChunkTask]:
    triples = task.payload
    half = len(triples) // 2
    return [
        ChunkTask(task.chunk_id, task.fn, triples[:half], half),
        ChunkTask(task.chunk_id + half, task.fn, triples[half:], len(triples) - half),
    ]


# -- transport-agnostic dispatch seam -----------------------------------------------
#
# A pooled engine describes one dispatch round as a DispatchRequest — chunk
# tasks, the worker initializer that builds per-process state, the split
# function used for bisection, fault-tolerance knobs and the engine's
# ledger/telemetry callbacks — and hands it to a DispatchTransport.  The
# in-process supervised pool is one implementation; the socket coordinator in
# :mod:`repro.dist` is another.  Because chunks are deterministic and merge by
# offset, *where* a transport runs them cannot change the assembled bytes.


@dataclass
class DispatchRequest:
    """Everything a transport needs to execute one chunked dispatch round.

    ``initializer(provider, program)`` builds the per-worker state that the
    chunk functions (``task.fn``) consume; both the initializer and the chunk
    functions are module-level (picklable by reference), so a request can
    cross process and host boundaries.  The callbacks run in the dispatching
    process: ``on_chunk_done`` is the durability point (the engine fsyncs the
    ledger there), ``on_grant`` and ``on_event`` feed telemetry.
    """

    kind: str
    program: str
    provider: RunnerProvider
    initializer: Callable
    tasks: List[ChunkTask]
    split: Optional[Callable[[ChunkTask], List[ChunkTask]]]
    jobs: int
    start_method: str
    max_retries: int = 3
    chunk_timeout: Optional[float] = None
    quarantine: bool = True
    on_chunk_done: Optional[Callable[[ChunkTask, object], None]] = None
    on_grant: Optional[Callable[[ChunkTask], None]] = None
    on_event: Optional[Callable[..., None]] = None

    @property
    def initargs(self) -> Tuple:
        """Arguments for ``initializer`` — what workers need to warm up."""
        return (self.provider, self.program)


class DispatchTransport:
    """Interface between pooled engines and whatever executes their chunks."""

    #: Short name surfaced as the engine name in telemetry and summaries.
    name: str = "?"

    def execute(self, request: DispatchRequest):
        """Run every task of ``request``; return a ``SupervisedRun``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (sockets, worker pools)."""

    def __enter__(self) -> "DispatchTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SupervisedPoolTransport(DispatchTransport):
    """The local dispatch path: a supervised process pool on this host."""

    name = "multiprocess"

    def execute(self, request: DispatchRequest):
        context = multiprocessing.get_context(request.start_method)
        supervisor = ChunkSupervisor(
            jobs=min(request.jobs, max(1, len(request.tasks))),
            context=context,
            initializer=request.initializer,
            initargs=request.initargs,
            max_retries=request.max_retries,
            chunk_timeout=request.chunk_timeout,
            quarantine=request.quarantine,
        )
        return supervisor.run(
            request.tasks,
            split=request.split,
            on_chunk_done=request.on_chunk_done,
            on_grant=request.on_grant,
            on_event=request.on_event,
        )


class _RunTelemetry:
    """Structured run-event stream for one engine dispatch.

    Wraps an optional :class:`~repro.telemetry.events.RunLog` keyed by the
    run's chunk-ledger key, so the event log lands next to the ledger and a
    resumed run appends to the stream of the run it continues.  Without a
    run-log directory (or without a ledger to take the key from) every
    method is a no-op, so engine code calls unconditionally.

    Construct at the very top of a run method — cache-stats and metrics
    baselines are captured there, *before* the runner is built, so the
    run's own warm-up traffic (golden derivation, codegen, cache loads) is
    part of its ``run_finished`` delta while earlier runs in the same
    process are not.  :meth:`attach` binds the event log once the ledger
    (whose content-addressed key names the log file) exists.
    """

    def __init__(self) -> None:
        self.log: Optional[RunLog] = None
        self._metrics_before = telemetry_metrics.registry().snapshot()
        self._cache_before = self._cache_totals()

    def attach(
        self,
        runlog_dir: Optional[str],
        ledger: Optional[ChunkLedger],
        *,
        resume: bool,
        meta: Optional[dict] = None,
    ) -> None:
        if runlog_dir is None or ledger is None:
            return
        try:
            self.log = RunLog.open(
                Path(runlog_dir), ledger.key, meta=meta, resume=resume
            )
        except OSError:
            self.log = None

    # -- event emission -----------------------------------------------------------

    def started(self, *, kind: str, total: int, engine: str, jobs: int) -> None:
        if self.log is not None:
            self.log.emit(
                "run_started", kind=kind, total=total, engine=engine, jobs=jobs
            )

    def resume_replay(self, ledger: Optional[ChunkLedger]) -> None:
        """Record chunks adopted from the ledger instead of executed."""
        if self.log is not None and ledger is not None and ledger.completed:
            self.log.emit(
                "resume_replay",
                chunks=len(ledger.completed),
                units=ledger.loaded_units,
            )

    def chunk_dispatched(self, chunk: int, count: int) -> None:
        if self.log is not None:
            self.log.emit("chunk_dispatched", chunk=chunk, count=count)

    def chunk_completed(self, chunk: int, count: int, done: int) -> None:
        if self.log is not None:
            self.log.emit("chunk_completed", chunk=chunk, count=count, done=done)

    def supervisor_event(self, event_type: str, **fields) -> None:
        """Passthrough target for :meth:`ChunkSupervisor.run`'s ``on_event``."""
        if self.log is not None:
            self.log.emit(event_type, **fields)

    def finished(
        self,
        *,
        status: str,
        done: int,
        total: int,
        seconds: float,
        phase_seconds: dict,
        supervision: dict,
    ) -> None:
        """Emit the authoritative ``run_finished`` event and close the log.

        Carries everything a report needs without re-running: phase wall and
        CPU seconds (the latter lifted from the merged metrics delta, so
        worker CPU shipped over the supervisor pipe is included), the run's
        cache traffic and derivation counts, supervision tallies, and the
        full metrics snapshot delta for ``--metrics-out``.
        """
        if self.log is None:
            return
        metrics_delta = telemetry_metrics.registry().snapshot_delta(
            self._metrics_before
        )
        self.log.emit(
            "run_finished",
            sync=True,
            status=status,
            done=done,
            total=total,
            seconds=round(seconds, 6),
            phase_seconds=phase_seconds,
            phase_cpu_seconds=telemetry_metrics.labeled_totals(
                metrics_delta, "repro_phase_cpu_seconds_total", "phase"
            ),
            supervision=supervision,
            cache=self._cache_report(metrics_delta),
            metrics=metrics_delta,
        )
        self.close()

    def close(self) -> None:
        if self.log is not None:
            self.log.close()

    # -- payload assembly ---------------------------------------------------------

    @staticmethod
    def _cache_totals() -> dict:
        from repro import artifacts

        cache = artifacts.active_cache()
        return cache.stats.as_dict() if cache is not None else {}

    def _cache_report(self, metrics_delta: dict) -> dict:
        now = self._cache_totals()
        report: dict = {}
        for event in ("hits", "misses", "stores"):
            prior = self._cache_before.get(event, {})
            table = {
                kind: value - prior.get(kind, 0)
                for kind, value in now.get(event, {}).items()
                if value - prior.get(kind, 0)
            }
            if table:
                report[event] = table
        derivations = {
            kind: int(value)
            for kind, value in telemetry_metrics.labeled_totals(
                metrics_delta, "repro_derivations_total", "kind"
            ).items()
            if value
        }
        if derivations:
            report["derivations"] = derivations
        return report


class ExecutionEngine:
    """Interface every campaign execution backend implements."""

    #: Short name used in progress messages and benchmark labels.
    name: str = "?"

    #: Per-phase wall-clock seconds of the most recent :meth:`run_errors`
    #: call (restore / pre_window / window / tail), for the CLI summary.
    phase_seconds: dict = {}

    #: Fault-tolerance accounting of the most recent run (retries, worker
    #: restarts, timeouts, bisections, quarantined experiments, ledger
    #: usage), ``phase_seconds``-style: observability only, never serialized.
    supervision: dict = {}

    # Fault-tolerance knobs shared by the engine implementations.
    _ledger_dir: Optional[str] = None
    _resume: bool = False
    _quarantine: bool = True
    #: Directory for structured run-event logs (requires a ledger for keys).
    _runlog_dir: Optional[str] = None

    def run(
        self,
        config: CampaignConfig,
        *,
        provider: RunnerProvider,
        keep_records: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        """Execute every experiment of one campaign and aggregate the outcome."""
        raise NotImplementedError

    def run_errors(
        self,
        program: str,
        technique: str,
        errors: Sequence[Tuple[int, Optional[int], int]],
        *,
        provider: RunnerProvider,
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[Outcome]:
        """Execute deterministic single-bit errors; outcomes in input order.

        This is the execution path of exhaustive and pruned error-space
        campaigns (:mod:`repro.errorspace`).  The base implementation runs
        in-process — crash-guarded and, with a ledger directory configured,
        resumable — while pooled engines override it with supervised chunked
        dispatch.
        """
        telemetry = _RunTelemetry()
        runner = provider(program)
        total = len(errors)
        stats = SupervisorStats()
        # Global tick sort first, then contiguous chunks: consecutive
        # experiments share fast-forward checkpoints across chunk borders.
        order = sorted(range(total), key=lambda j: errors[j][0])
        outcomes: List[Optional[Outcome]] = [None] * total
        chunk = 256
        ledger: Optional[ChunkLedger] = None
        if self._ledger_dir is not None and total:
            ledger = _open_errors_ledger(
                self._ledger_dir,
                resume=self._resume,
                runner=runner,
                program=program,
                technique=technique,
                errors=errors,
                chunk=chunk,
            )
            for start, entry in sorted(ledger.completed.items()):
                values = entry["outcomes"]
                for position, value in zip(order[start : start + len(values)], values):
                    outcomes[position] = Outcome(value)
            work = ledger.missing(chunk)
        else:
            work = [
                (start, min(chunk, total - start)) for start in range(0, total, chunk)
            ]
        started = time.monotonic()
        done = ledger.loaded_units if ledger is not None else 0
        label = f"{program}/{technique}/error-space"
        telemetry.attach(
            self._runlog_dir,
            ledger,
            resume=self._resume,
            meta={"program": program, "technique": technique},
        )
        telemetry.started(kind="errors", total=total, engine=self.name, jobs=1)
        telemetry.resume_replay(ledger)
        phase_before = _phase_snapshot(runner)
        guard = _SignalGuard()
        guard.install()
        interrupted = False
        try:
            abort_after = int(os.environ.get("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "0") or 0)
        except ValueError:
            abort_after = 0
        completed_chunks = 0
        try:
            for start, count in work:
                positions = order[start : start + count]
                batch = [errors[j] for j in positions]
                if ledger is not None:
                    ledger.record_grant(start, count)
                telemetry.chunk_dispatched(start, count)
                values = _guarded_error_values(
                    runner, technique, batch, quarantine=self._quarantine, stats=stats
                )
                for position, value in zip(positions, values):
                    outcomes[position] = Outcome(value)
                if ledger is not None:
                    ledger.record_done(start, count, {"outcomes": values})
                done += count
                telemetry.chunk_completed(start, count, done)
                completed_chunks += 1
                stats.chunks_completed += 1
                if on_progress is not None:
                    on_progress(
                        EngineProgress(
                            campaign_id=label,
                            done=done,
                            total=total,
                            elapsed_seconds=time.monotonic() - started,
                        )
                    )
                if guard.stop_requested or (
                    abort_after and completed_chunks >= abort_after
                ):
                    interrupted = done < total
                    break
        finally:
            guard.restore()
            if ledger is not None:
                ledger.close()
        self.phase_seconds = _phase_delta(runner, phase_before)
        stats.interrupted = interrupted
        self.supervision = self._supervision_summary(stats, ledger, 0)
        telemetry.finished(
            status="interrupted" if interrupted else "finished",
            done=done,
            total=total,
            seconds=time.monotonic() - started,
            phase_seconds=self.phase_seconds,
            supervision=self.supervision,
        )
        if interrupted:
            raise CampaignInterrupted(
                self._interrupt_message(label, done, total, ledger),
                done=done,
                total=total,
                resumable=ledger is not None,
            )
        if ledger is not None and total and done >= total:
            ledger.compact(
                [(0, total, {"outcomes": [outcomes[j].value for j in order]})]
            )
        return outcomes

    def plan_infer_map(self, program: str, *, provider: RunnerProvider):
        """An outcome-inference map for pruned-plan construction, or None.

        None means "infer in-process" (the serial default).  Pooled engines
        return a callable that chunk-dispatches the inference pass to their
        workers, so planning scales with ``--jobs`` exactly like execution.
        """
        return None

    def _supervision_summary(
        self,
        stats: SupervisorStats,
        ledger: Optional[ChunkLedger],
        serial_fallback_units: int,
    ) -> dict:
        summary = stats.as_dict()
        summary["serial_fallback_units"] = serial_fallback_units
        summary["ledger_loaded_chunks"] = (
            len(ledger.completed) if ledger is not None else 0
        )
        summary["ledger_loaded_units"] = ledger.loaded_units if ledger is not None else 0
        summary["ledger_path"] = str(ledger.path) if ledger is not None else None
        return summary

    @staticmethod
    def _interrupt_message(
        label: str, done: int, total: int, ledger: Optional[ChunkLedger]
    ) -> str:
        message = f"{label}: interrupted after {done}/{total} experiments"
        if ledger is not None:
            message += (
                f"; completed chunks are ledgered at {ledger.path} — "
                "re-run with --resume to execute only the missing chunks"
            )
        else:
            message += " (no ledger configured: a re-run starts from scratch)"
        return message

    def close(self) -> None:
        """Release any resources held by the engine (pools, workers)."""

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SerialEngine(ExecutionEngine):
    """Runs experiments one after another in the calling process.

    Shares the pooled engines' fault-tolerance surface where it makes sense
    without workers: poisoned experiments are bisected and quarantined as
    ``crashed`` (``quarantine=False`` raises instead), completed chunks are
    ledgered when ``ledger_dir`` is set, and SIGINT/SIGTERM finish the
    current chunk, flush the ledger and raise
    :class:`~repro.errors.CampaignInterrupted`.
    """

    name = "serial"

    def __init__(
        self,
        *,
        progress_interval: int = 25,
        quarantine: bool = True,
        ledger_dir: Optional[str] = None,
        resume: bool = False,
        runlog_dir: Optional[str] = None,
    ) -> None:
        if progress_interval < 1:
            raise ConfigurationError("progress_interval must be positive")
        if resume and ledger_dir is None:
            raise ConfigurationError("resume requires a ledger directory")
        self._interval = progress_interval
        self._quarantine = quarantine
        self._ledger_dir = ledger_dir
        self._resume = resume
        self._runlog_dir = runlog_dir

    def run(
        self,
        config: CampaignConfig,
        *,
        provider: RunnerProvider,
        keep_records: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        telemetry = _RunTelemetry()
        runner = provider(config.program)
        resolved = config.resolve_win_size()
        total = config.experiments
        stats = SupervisorStats()
        chunk = self._interval
        partials: Dict[int, CampaignResult] = {}
        ledger: Optional[ChunkLedger] = None
        if self._ledger_dir is not None:
            ledger = _open_campaign_ledger(
                self._ledger_dir,
                resume=self._resume,
                runner=runner,
                config=config,
                resolved_win_size=resolved,
                keep_records=keep_records,
                chunk=chunk,
            )
            for start, payload in ledger.completed.items():
                partials[start] = CampaignResult.from_partial_payload(
                    config, resolved, payload
                )
            work = ledger.missing(chunk)
        else:
            work = [
                (start, min(chunk, total - start)) for start in range(0, total, chunk)
            ]
        started = time.monotonic()
        done = sum(partial.experiments for partial in partials.values())
        telemetry.attach(
            self._runlog_dir,
            ledger,
            resume=self._resume,
            meta={"campaign": config.campaign_id, "program": config.program},
        )
        telemetry.started(
            kind="campaign", total=total, engine=self.name, jobs=1
        )
        telemetry.resume_replay(ledger)
        guard = _SignalGuard()
        guard.install()
        interrupted = False
        try:
            abort_after = int(os.environ.get("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "0") or 0)
        except ValueError:
            abort_after = 0
        completed_chunks = 0
        try:
            for start, count in work:
                if ledger is not None:
                    ledger.record_grant(start, count)
                telemetry.chunk_dispatched(start, count)
                partial = _guarded_experiment_batch(
                    runner,
                    config,
                    resolved,
                    start,
                    count,
                    keep_records=keep_records,
                    quarantine=self._quarantine,
                    stats=stats,
                )
                partials[start] = partial
                if ledger is not None:
                    ledger.record_done(start, count, partial.to_partial_payload())
                done += count
                telemetry.chunk_completed(start, count, done)
                completed_chunks += 1
                stats.chunks_completed += 1
                if on_progress is not None:
                    on_progress(
                        EngineProgress(
                            campaign_id=config.campaign_id,
                            done=done,
                            total=total,
                            elapsed_seconds=time.monotonic() - started,
                        )
                    )
                if guard.stop_requested or (
                    abort_after and completed_chunks >= abort_after
                ):
                    interrupted = done < total
                    break
        finally:
            guard.restore()
            if ledger is not None:
                ledger.close()
        stats.interrupted = interrupted
        self.supervision = self._supervision_summary(stats, ledger, 0)
        telemetry.finished(
            status="interrupted" if interrupted else "finished",
            done=done,
            total=total,
            seconds=time.monotonic() - started,
            phase_seconds=_merged_phase_seconds(partials.values()),
            supervision=self.supervision,
        )
        if interrupted:
            raise CampaignInterrupted(
                self._interrupt_message(config.campaign_id, done, total, ledger),
                done=done,
                total=total,
                resumable=ledger is not None,
            )
        result = CampaignResult(config=config, resolved_win_size=resolved)
        for start in sorted(partials):
            result.merge(partials[start])
        if ledger is not None and total and done >= total:
            ledger.compact([(0, total, result.to_partial_payload())])
        return result


class MultiprocessEngine(ExecutionEngine):
    """Fans experiment batches out to supervised worker processes.

    Each worker process holds exactly one compiled workload + golden trace;
    experiments are dispatched as contiguous index chunks and the partial
    results are merged in index order, so the assembled campaign result is
    bit-identical to a :class:`SerialEngine` run of the same config — chunk
    retries, worker restarts, bisection and resume cannot change the bytes.

    ``supervised=False`` falls back to the original blind ``Pool.imap``
    dispatch (no crash recovery, no ledger) — kept as the baseline the
    supervised path's overhead is benchmarked against, and as an escape
    hatch.

    The default start method is ``fork`` where available (Linux), which lets
    workers inherit already-compiled workloads and makes arbitrary provider
    callables (closures included) usable.  Under ``spawn`` the provider must
    be picklable; the default registry provider is.
    """

    name = "multiprocess"

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        supervised: bool = True,
        max_retries: int = 3,
        chunk_timeout: Optional[float] = None,
        quarantine: bool = True,
        ledger_dir: Optional[str] = None,
        resume: bool = False,
        runlog_dir: Optional[str] = None,
        transport: Optional[DispatchTransport] = None,
    ) -> None:
        resolved_jobs = jobs if jobs is not None else available_cpus()
        if resolved_jobs < 1:
            raise ConfigurationError("a worker pool needs at least one job")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be positive")
        if max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ConfigurationError("chunk_timeout must be positive")
        if resume and ledger_dir is None:
            raise ConfigurationError("resume requires a ledger directory")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.jobs = resolved_jobs
        self._chunk_size = chunk_size
        self._start_method = start_method
        self._supervised = supervised
        self._max_retries = max_retries
        self._chunk_timeout = chunk_timeout
        self._quarantine = quarantine
        self._ledger_dir = ledger_dir
        self._resume = resume
        self._runlog_dir = runlog_dir
        self._transport = transport or SupervisedPoolTransport()
        # Surface the transport in progress/benchmark labels ("multiprocess"
        # for the local pool, "distributed" for the socket coordinator).
        self.name = self._transport.name

    def _warm_provider(self, provider: RunnerProvider, program: str) -> None:
        """Warm the parent once before dispatch.

        Under ``fork`` this lets workers inherit the compiled workload,
        decoded program and golden trace.  Whenever the artifact cache is
        active — any start method — the warm runner's artifacts are also
        persisted to disk, so derivation happens once per host and spawned
        workers load instead of re-deriving.
        """
        from repro import artifacts

        if hasattr(provider, "prepare"):
            provider.prepare()
        cache_active = artifacts.active_cache() is not None
        if self._start_method == "fork" or cache_active:
            runner = provider(program)
            if cache_active:
                persist_runner_artifacts(runner)

    def _experiment_chunk_size(self, total: int) -> int:
        chunk = self._chunk_size
        if chunk is None:
            # Aim for ~4 batches per worker so stragglers rebalance, capped to
            # keep per-batch IPC payloads small.
            chunk = max(1, min(64, -(-total // (self.jobs * 4))))
        return chunk

    def _batches(self, total: int) -> List[Tuple[int, int]]:
        chunk = self._experiment_chunk_size(total)
        return [(start, min(chunk, total - start)) for start in range(0, total, chunk)]

    def _dispatch(
        self,
        *,
        kind: str,
        program: str,
        provider: RunnerProvider,
        initializer: Callable,
        tasks: List[ChunkTask],
        split: Optional[Callable[[ChunkTask], List[ChunkTask]]],
        on_chunk_done=None,
        on_grant=None,
        on_event=None,
    ):
        """Execute one chunked round through the configured transport."""
        request = DispatchRequest(
            kind=kind,
            program=program,
            provider=provider,
            initializer=initializer,
            tasks=tasks,
            split=split,
            jobs=self.jobs,
            start_method=self._start_method,
            max_retries=self._max_retries,
            chunk_timeout=self._chunk_timeout,
            quarantine=self._quarantine,
            on_chunk_done=on_chunk_done,
            on_grant=on_grant,
            on_event=on_event,
        )
        return self._transport.execute(request)

    def close(self) -> None:
        self._transport.close()

    def _supervision_summary(
        self,
        stats: SupervisorStats,
        ledger: Optional[ChunkLedger],
        serial_fallback_units: int,
    ) -> dict:
        summary = super()._supervision_summary(stats, ledger, serial_fallback_units)
        dist = getattr(self._transport, "stats", None)
        if dist is not None:
            summary["distributed"] = dist.as_dict()
        return summary

    # -- sampled campaigns --------------------------------------------------------

    def run(
        self,
        config: CampaignConfig,
        *,
        provider: RunnerProvider,
        keep_records: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        if not self._supervised:
            return self._run_pool(
                config,
                provider=provider,
                keep_records=keep_records,
                on_progress=on_progress,
            )
        telemetry = _RunTelemetry()
        resolved = config.resolve_win_size()
        total = config.experiments
        chunk = self._experiment_chunk_size(total)
        self._warm_provider(provider, config.program)
        partials: Dict[int, CampaignResult] = {}
        ledger: Optional[ChunkLedger] = None
        if self._ledger_dir is not None:
            ledger = _open_campaign_ledger(
                self._ledger_dir,
                resume=self._resume,
                runner=provider(config.program),
                config=config,
                resolved_win_size=resolved,
                keep_records=keep_records,
                chunk=chunk,
            )
            for start, payload in ledger.completed.items():
                partials[start] = CampaignResult.from_partial_payload(
                    config, resolved, payload
                )
            work = ledger.missing(chunk)
        else:
            work = [
                (start, min(chunk, total - start)) for start in range(0, total, chunk)
            ]
        started = time.monotonic()
        done = sum(partial.experiments for partial in partials.values())
        telemetry.attach(
            self._runlog_dir,
            ledger,
            resume=self._resume,
            meta={"campaign": config.campaign_id, "program": config.program},
        )
        telemetry.started(
            kind="campaign", total=total, engine=self.name, jobs=self.jobs
        )
        telemetry.resume_replay(ledger)

        def emit_progress() -> None:
            if on_progress is not None:
                on_progress(
                    EngineProgress(
                        campaign_id=config.campaign_id,
                        done=done,
                        total=total,
                        elapsed_seconds=time.monotonic() - started,
                    )
                )

        tasks = [
            ChunkTask(
                start,
                _experiment_chunk,
                (config, resolved, start, count, keep_records),
                count,
            )
            for start, count in work
        ]

        def on_done(task: ChunkTask, partial: CampaignResult) -> None:
            nonlocal done
            partials[task.chunk_id] = partial
            done += task.size
            if ledger is not None:
                ledger.record_done(task.chunk_id, task.size, partial.to_partial_payload())
            telemetry.chunk_completed(task.chunk_id, task.size, done)
            emit_progress()

        def on_grant(task: ChunkTask) -> None:
            if ledger is not None:
                ledger.record_grant(task.chunk_id, task.size)
            telemetry.chunk_dispatched(task.chunk_id, task.size)

        stats = SupervisorStats()
        serial_fallback_units = 0
        try:
            if tasks:
                outcome = self._dispatch(
                    kind="campaign",
                    program=config.program,
                    provider=provider,
                    initializer=_initialise_supervised_runner,
                    tasks=tasks,
                    split=_split_experiment_task,
                    on_chunk_done=on_done,
                    on_grant=on_grant,
                    on_event=telemetry.supervisor_event,
                )
                stats.merge(outcome.stats)
                if outcome.interrupted and done < total:
                    self.supervision = self._supervision_summary(
                        stats, ledger, serial_fallback_units
                    )
                    telemetry.finished(
                        status="interrupted",
                        done=done,
                        total=total,
                        seconds=time.monotonic() - started,
                        phase_seconds=_merged_phase_seconds(partials.values()),
                        supervision=self.supervision,
                    )
                    raise CampaignInterrupted(
                        self._interrupt_message(config.campaign_id, done, total, ledger),
                        done=done,
                        total=total,
                        resumable=ledger is not None,
                    )
                if outcome.degraded and outcome.unfinished:
                    serial_units = sum(task.size for task in outcome.unfinished)
                    warnings.warn(
                        f"supervised worker pool for {config.campaign_id} degraded "
                        f"after repeated worker crashes; finishing the remaining "
                        f"{serial_units} experiments serially in-process",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    runner = provider(config.program)
                    for task in outcome.unfinished:
                        _, _, start, count, _ = task.payload
                        partial = _guarded_experiment_batch(
                            runner,
                            config,
                            resolved,
                            start,
                            count,
                            keep_records=keep_records,
                            quarantine=self._quarantine,
                            stats=stats,
                        )
                        on_done(task, partial)
                        serial_fallback_units += task.size
                if outcome.quarantined:
                    runner = provider(config.program)
                    for quarantined in outcome.quarantined:
                        _, _, start, count, _ = quarantined.task.payload
                        partial = _crashed_partial(
                            runner,
                            config,
                            resolved,
                            start,
                            count,
                            keep_records=keep_records,
                        )
                        on_done(quarantined.task, partial)
        finally:
            if ledger is not None:
                ledger.close()
        self.supervision = self._supervision_summary(stats, ledger, serial_fallback_units)
        telemetry.finished(
            status="finished",
            done=done,
            total=total,
            seconds=time.monotonic() - started,
            phase_seconds=_merged_phase_seconds(partials.values()),
            supervision=self.supervision,
        )
        result = CampaignResult(config=config, resolved_win_size=resolved)
        for start in sorted(partials):
            result.merge(partials[start])
        if ledger is not None and total and done >= total:
            ledger.compact([(0, total, result.to_partial_payload())])
        return result

    def _run_pool(
        self,
        config: CampaignConfig,
        *,
        provider: RunnerProvider,
        keep_records: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        """Legacy blind ``Pool.imap`` dispatch (``supervised=False``)."""
        resolved = config.resolve_win_size()
        result = CampaignResult(config=config, resolved_win_size=resolved)
        batches = self._batches(config.experiments)
        tasks = [
            (config, resolved, start, count, keep_records) for start, count in batches
        ]
        context = multiprocessing.get_context(self._start_method)
        self._warm_provider(provider, config.program)
        started = time.monotonic()
        done = 0
        with context.Pool(
            processes=min(self.jobs, len(batches)),
            initializer=_initialise_worker,
            initargs=(provider, config.program),
        ) as pool:
            # imap yields partials in submission order, which keeps the merged
            # record stream identical to a serial run.
            for partial in pool.imap(_run_worker_batch, tasks):
                result.merge(partial)
                done += partial.experiments
                if on_progress is not None:
                    on_progress(
                        EngineProgress(
                            campaign_id=config.campaign_id,
                            done=done,
                            total=config.experiments,
                            elapsed_seconds=time.monotonic() - started,
                        )
                    )
        return result

    # -- exhaustive error spaces --------------------------------------------------

    def _error_chunk_size(self, total: int) -> int:
        chunk = self._chunk_size
        if chunk is None:
            chunk = max(32, min(512, -(-total // (self.jobs * 4))))
        return chunk

    def run_errors(
        self,
        program: str,
        technique: str,
        errors: Sequence[Tuple[int, Optional[int], int]],
        *,
        provider: RunnerProvider,
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[Outcome]:
        if not self._supervised:
            return self._run_errors_pool(
                program, technique, errors, provider=provider, on_progress=on_progress
            )
        total = len(errors)
        if total == 0:
            return []
        telemetry = _RunTelemetry()
        # Tick-sorted contiguous chunks: every worker's batch is a dense
        # slice of injection times, maximising checkpoint reuse per process.
        order = sorted(range(total), key=lambda j: errors[j][0])
        chunk = self._error_chunk_size(total)
        self._warm_provider(provider, program)
        outcomes: List[Optional[Outcome]] = [None] * total
        label = f"{program}/{technique}/error-space"
        ledger: Optional[ChunkLedger] = None
        loaded_units = 0
        if self._ledger_dir is not None:
            ledger = _open_errors_ledger(
                self._ledger_dir,
                resume=self._resume,
                runner=provider(program),
                program=program,
                technique=technique,
                errors=errors,
                chunk=chunk,
            )
            for start, entry in sorted(ledger.completed.items()):
                values = entry["outcomes"]
                for position, value in zip(order[start : start + len(values)], values):
                    outcomes[position] = Outcome(value)
            loaded_units = ledger.loaded_units
            work = ledger.missing(chunk)
        else:
            work = [
                (start, min(chunk, total - start)) for start in range(0, total, chunk)
            ]
        started = time.monotonic()
        done = loaded_units
        phase_totals: dict = {}
        telemetry.attach(
            self._runlog_dir,
            ledger,
            resume=self._resume,
            meta={"program": program, "technique": technique},
        )
        telemetry.started(kind="errors", total=total, engine=self.name, jobs=self.jobs)
        telemetry.resume_replay(ledger)

        def emit_progress() -> None:
            if on_progress is not None:
                on_progress(
                    EngineProgress(
                        campaign_id=label,
                        done=done,
                        total=total,
                        elapsed_seconds=time.monotonic() - started,
                    )
                )

        tasks = [
            ChunkTask(
                start,
                _error_chunk,
                (technique, [errors[j] for j in order[start : start + count]]),
                count,
            )
            for start, count in work
        ]

        def apply_values(start: int, values: List[str]) -> None:
            for position, value in zip(order[start : start + len(values)], values):
                outcomes[position] = Outcome(value)

        def on_done(task: ChunkTask, body) -> None:
            nonlocal done
            values, phases = body
            apply_values(task.chunk_id, values)
            for phase, seconds in phases.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
            if ledger is not None:
                ledger.record_done(task.chunk_id, task.size, {"outcomes": values})
            done += task.size
            telemetry.chunk_completed(task.chunk_id, task.size, done)
            emit_progress()

        def on_grant(task: ChunkTask) -> None:
            if ledger is not None:
                ledger.record_grant(task.chunk_id, task.size)
            telemetry.chunk_dispatched(task.chunk_id, task.size)

        stats = SupervisorStats()
        serial_fallback_units = 0
        try:
            if tasks:
                outcome = self._dispatch(
                    kind="errors",
                    program=program,
                    provider=provider,
                    initializer=_initialise_supervised_runner,
                    tasks=tasks,
                    split=_split_error_task,
                    on_chunk_done=on_done,
                    on_grant=on_grant,
                    on_event=telemetry.supervisor_event,
                )
                stats.merge(outcome.stats)
                if outcome.interrupted and done < total:
                    self.phase_seconds = phase_totals
                    self.supervision = self._supervision_summary(
                        stats, ledger, serial_fallback_units
                    )
                    telemetry.finished(
                        status="interrupted",
                        done=done,
                        total=total,
                        seconds=time.monotonic() - started,
                        phase_seconds=phase_totals,
                        supervision=self.supervision,
                    )
                    raise CampaignInterrupted(
                        self._interrupt_message(label, done, total, ledger),
                        done=done,
                        total=total,
                        resumable=ledger is not None,
                    )
                if outcome.degraded and outcome.unfinished:
                    serial_units = sum(task.size for task in outcome.unfinished)
                    warnings.warn(
                        f"supervised worker pool for {label} degraded after "
                        f"repeated worker crashes; finishing the remaining "
                        f"{serial_units} errors serially in-process",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    runner = provider(program)
                    for task in outcome.unfinished:
                        technique_name, batch = task.payload
                        values = _guarded_error_values(
                            runner,
                            technique_name,
                            batch,
                            quarantine=self._quarantine,
                            stats=stats,
                        )
                        on_done(task, (values, {}))
                        serial_fallback_units += task.size
                if outcome.quarantined:
                    for quarantined in outcome.quarantined:
                        values = [Outcome.CRASHED.value] * quarantined.task.size
                        on_done(quarantined.task, (values, {}))
        finally:
            if ledger is not None:
                ledger.close()
        self.phase_seconds = phase_totals
        self.supervision = self._supervision_summary(stats, ledger, serial_fallback_units)
        telemetry.finished(
            status="finished",
            done=done,
            total=total,
            seconds=time.monotonic() - started,
            phase_seconds=phase_totals,
            supervision=self.supervision,
        )
        if ledger is not None and total and done >= total:
            ledger.compact(
                [(0, total, {"outcomes": [outcomes[j].value for j in order]})]
            )
        return outcomes

    def _run_errors_pool(
        self,
        program: str,
        technique: str,
        errors: Sequence[Tuple[int, Optional[int], int]],
        *,
        provider: RunnerProvider,
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[Outcome]:
        """Legacy blind ``Pool.imap`` dispatch (``supervised=False``)."""
        total = len(errors)
        if total == 0:
            return []
        order = sorted(range(total), key=lambda j: errors[j][0])
        chunk = self._error_chunk_size(total)
        tasks = [
            (technique, [errors[j] for j in order[start : start + chunk]])
            for start in range(0, total, chunk)
        ]
        context = multiprocessing.get_context(self._start_method)
        self._warm_provider(provider, program)
        outcomes: List[Optional[Outcome]] = [None] * total
        started = time.monotonic()
        done = 0
        label = f"{program}/{technique}/error-space"
        phase_totals: dict = {}
        with context.Pool(
            processes=min(self.jobs, len(tasks)),
            initializer=_initialise_worker,
            initargs=(provider, program),
        ) as pool:
            for task_index, (batch_outcomes, batch_phases) in enumerate(
                pool.imap(_run_worker_error_batch, tasks)
            ):
                positions = order[task_index * chunk : task_index * chunk + len(batch_outcomes)]
                for position, outcome in zip(positions, batch_outcomes):
                    outcomes[position] = outcome
                for phase, seconds in batch_phases.items():
                    phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
                done += len(batch_outcomes)
                if on_progress is not None:
                    on_progress(
                        EngineProgress(
                            campaign_id=label,
                            done=done,
                            total=total,
                            elapsed_seconds=time.monotonic() - started,
                        )
                    )
        self.phase_seconds = phase_totals
        return outcomes

    # -- planner inference --------------------------------------------------------

    def plan_infer_map(self, program: str, *, provider: RunnerProvider):
        """Chunk-dispatch the planner's inference pass to supervised workers.

        Each worker builds (or cache-loads) the workload's def-use index and
        inference engine once, then maps deterministic ``(tick, slot, bit)``
        chunks to outcomes.  Results are keyed by chunk offset and assembled
        in order, so the plan is bit-identical to a serial build regardless
        of retries or worker restarts.  Quarantined chunks infer as ``None``
        (the planner then schedules those errors for execution).  Only
        registry programs are dispatchable (workers resolve the index by
        name).
        """

        from repro import artifacts

        if self._start_method != "fork" and artifacts.active_cache() is None:
            # Spawned workers share neither memory nor a disk cache: each
            # would re-derive the golden trace and def-use index from
            # scratch, which costs more than it saves.  Plan serially.
            return None

        def infer_map(errors):
            total = len(errors)
            if total == 0:
                return []
            triples = [
                (error.dynamic_index, error.slot, error.bit) for error in errors
            ]
            chunk = max(1024, min(16384, -(-total // (self.jobs * 4))))
            self._warm_provider(provider, program)
            # Make sure workers can load the def-use index from the cache
            # instead of replaying the golden trace per process.
            if artifacts.active_cache() is not None:
                from repro.programs.registry import get_defuse_index

                get_defuse_index(program)
            context = multiprocessing.get_context(self._start_method)
            if not self._supervised:
                outcomes: List[Optional[Outcome]] = []
                with context.Pool(
                    processes=min(self.jobs, -(-total // chunk)),
                    initializer=_initialise_infer_worker,
                    initargs=(provider, program),
                ) as pool:
                    for batch in pool.imap(
                        _run_worker_infer_batch,
                        [triples[start : start + chunk] for start in range(0, total, chunk)],
                    ):
                        outcomes.extend(batch)
                return outcomes
            tasks = [
                ChunkTask(
                    start,
                    _infer_chunk,
                    triples[start : start + chunk],
                    min(chunk, total - start),
                )
                for start in range(0, total, chunk)
            ]
            chunks: Dict[int, List[Optional[Outcome]]] = {}
            outcome = self._dispatch(
                kind="infer",
                program=program,
                provider=provider,
                initializer=_initialise_supervised_inference,
                tasks=tasks,
                split=_split_infer_task,
                on_chunk_done=lambda task, body: chunks.__setitem__(task.chunk_id, body),
            )
            if outcome.interrupted and (outcome.unfinished or outcome.quarantined):
                raise CampaignInterrupted(
                    f"{program} inference pass interrupted "
                    f"({len(chunks)}/{len(tasks)} chunks done); planning has no "
                    f"ledger — re-run to restart the pass",
                    done=sum(len(body) for body in chunks.values()),
                    total=total,
                    resumable=False,
                )
            for quarantined in outcome.quarantined:
                # Unprovable by crashing worker: let the planner execute them.
                chunks[quarantined.task.chunk_id] = [None] * quarantined.task.size
            if outcome.degraded and outcome.unfinished:
                warnings.warn(
                    f"supervised inference pool for {program} degraded after "
                    f"repeated worker crashes; finishing inference in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
                engine = _initialise_supervised_inference(provider, program)
                for task in outcome.unfinished:
                    chunks[task.chunk_id] = _infer_chunk(engine, task.payload)
            assembled: List[Optional[Outcome]] = []
            for start in sorted(chunks):
                assembled.extend(chunks[start])
            return assembled

        return infer_map


# -- legacy pool worker plumbing ----------------------------------------------------
#
# Used by the ``supervised=False`` escape hatch (and the overhead benchmark).
# Workers are initialised once per process: the provider compiles the
# workload, decodes it into executable form and profiles the golden trace,
# then every batch reuses all three.  Module-level state is required because
# multiprocessing initialisers cannot return values.

_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _initialise_worker(provider: Optional[RunnerProvider], program_name: str) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = (provider or registry_provider)(program_name)


def _run_worker_batch(
    task: Tuple[CampaignConfig, int, int, int, bool]
) -> CampaignResult:
    config, resolved_win_size, start, count, keep_records = task
    assert _WORKER_RUNNER is not None, "worker pool was not initialised"
    return run_experiment_batch(
        _WORKER_RUNNER, config, resolved_win_size, start, count, keep_records=keep_records
    )


def _run_worker_error_batch(
    task: Tuple[str, List[Tuple[int, Optional[int], int]]]
) -> Tuple[List[Outcome], dict]:
    technique, errors = task
    assert _WORKER_RUNNER is not None, "worker pool was not initialised"
    phase_before = _phase_snapshot(_WORKER_RUNNER)
    outcomes = run_error_batch(_WORKER_RUNNER, technique, errors)
    return outcomes, _phase_delta(_WORKER_RUNNER, phase_before)


_WORKER_INFERENCE = None


def _initialise_infer_worker(provider, program_name: str) -> None:
    """Build (or cache-load) the def-use index + inference engine once."""
    global _WORKER_INFERENCE
    _WORKER_INFERENCE = _initialise_supervised_inference(provider, program_name)


def _run_worker_infer_batch(
    errors: List[Tuple[int, Optional[int], int]]
) -> List[Optional[Outcome]]:
    engine = _WORKER_INFERENCE
    assert engine is not None, "inference worker pool was not initialised"
    return _infer_chunk(engine, errors)
