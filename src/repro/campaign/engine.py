"""Pluggable campaign execution engines.

A campaign is an embarrassingly parallel bag of experiments: every experiment
is fully determined by ``CampaignConfig.experiment_seed(index)``, so the only
shared state a worker needs is the compiled workload and its golden trace.
This module exploits that with two interchangeable backends:

* :class:`SerialEngine` — runs every experiment in-process, in index order;
* :class:`MultiprocessEngine` — fans chunked experiment batches out to a
  worker pool; each worker builds the compiled workload + golden trace once
  (LLFI's profile-once/inject-many split, batch-dispatched) and returns
  picklable partial :class:`~repro.campaign.results.CampaignResult` objects
  that the parent merges in submission order.

Because seeds are derived per experiment index rather than drawn from one
sequential stream, both engines produce bit-identical results for the same
configuration, and any experiment can be replayed in isolation by index.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.campaign.config import CampaignConfig
from repro.campaign.results import CampaignResult
from repro.errors import ConfigurationError
from repro.injection.experiment import ExperimentResult, ExperimentRunner
from repro.injection.faultmodel import FaultSpec
from repro.injection.outcome import Outcome
from repro.injection.techniques import technique_by_name

#: A provider maps a program name to a ready-to-use ExperimentRunner.
RunnerProvider = Callable[[str], ExperimentRunner]


def registry_provider(program_name: str) -> ExperimentRunner:
    """Resolve programs through the benchmark registry (imported lazily)."""
    from repro.programs.registry import get_experiment_runner

    return get_experiment_runner(program_name)


@dataclass(frozen=True)
class RegistryProvider:
    """A registry provider with execution knobs, picklable for worker pools.

    ``fast_forward`` / ``checkpoint_interval`` / ``windowed`` parameterise
    the :class:`~repro.injection.experiment.ExperimentRunner` each worker
    builds (the CLI's ``--no-fast-forward`` / ``--checkpoint-interval`` /
    ``--no-windowed`` land here).  ``cache_dir`` points workers at the
    persistent artifact cache (:mod:`repro.artifacts`), so spawned processes
    warm up from disk instead of re-deriving golden traces, checkpoints,
    def-use indices and generated backend source.  ``backend`` selects the
    execution engine each worker's runner uses (``decoded``, ``compiled`` or
    ``reference``).
    """

    fast_forward: bool = True
    checkpoint_interval: Optional[int] = None
    cache_dir: Optional[str] = None
    backend: str = "decoded"
    windowed: bool = True

    def prepare(self) -> None:
        """Activate this provider's artifact cache in the current process."""
        if self.cache_dir is not None:
            from repro import artifacts

            artifacts.configure(self.cache_dir)

    def __call__(self, program_name: str) -> ExperimentRunner:
        from repro.programs.registry import get_experiment_runner

        self.prepare()
        return get_experiment_runner(
            program_name,
            fast_forward=self.fast_forward,
            checkpoint_interval=self.checkpoint_interval,
            backend=self.backend,
            windowed=self.windowed,
        )


class CachingProvider:
    """Caches one ExperimentRunner per workload around any provider.

    A cached runner bundles everything a worker needs per workload: the
    compiled module, its decoded executable form
    (:attr:`~repro.injection.experiment.ExperimentRunner.decoded`) and the
    golden trace — so compile, decode and profile all happen once per
    process, and every experiment only pays for execution.

    Picklable as long as the wrapped provider is: the cache is dropped when
    the wrapper crosses a process boundary (compiled workloads are heavy and
    each worker profiles its own), so the default registry provider survives
    even ``spawn``-based pools.  Under ``fork``, workers inherit a warmed
    cache — decoded program and golden trace included — and skip all three
    steps entirely.
    """

    def __init__(self, provider: Optional[RunnerProvider] = None) -> None:
        self._provider = provider or registry_provider
        self._cache: dict = {}

    def __call__(self, program_name: str) -> ExperimentRunner:
        if program_name not in self._cache:
            self._cache[program_name] = self._provider(program_name)
        return self._cache[program_name]

    def __getstate__(self):
        return {"_provider": self._provider, "_cache": {}}


@dataclass(frozen=True)
class EngineProgress:
    """A progress snapshot emitted while a campaign executes."""

    campaign_id: str
    done: int
    total: int
    elapsed_seconds: float

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def experiments_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.done / self.elapsed_seconds

    @property
    def eta_seconds(self) -> Optional[float]:
        rate = self.experiments_per_second
        if rate <= 0.0:
            return None
        return (self.total - self.done) / rate


ProgressCallback = Callable[[EngineProgress], None]


def _phase_snapshot(runner: ExperimentRunner) -> dict:
    """Copy a runner's cumulative per-phase timers (missing on stubs: {})."""
    return dict(getattr(runner, "phase_seconds", None) or {})


def _phase_delta(runner: ExperimentRunner, before: dict) -> dict:
    """Per-phase seconds spent on ``runner`` since ``before`` was snapshot."""
    return {
        phase: total - before.get(phase, 0.0)
        for phase, total in _phase_snapshot(runner).items()
    }


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, e.g. inside containers)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def run_experiment_batch(
    runner: ExperimentRunner,
    config: CampaignConfig,
    resolved_win_size: int,
    start: int,
    count: int,
    *,
    keep_records: bool = True,
) -> CampaignResult:
    """Run experiments ``start .. start+count`` and return a partial result.

    Each experiment draws its own RNG from the campaign's derived seed for
    that index, so batches may execute in any order, on any process, and
    still reproduce exactly the same faults.

    Execution order within the batch is an implementation detail the results
    cannot observe: specs are sampled up front and *executed* sorted by first
    injection tick — consecutive experiments then restore from the same
    fast-forward checkpoint — while aggregation happens in submission order
    (a stable sort merged back), so the partial result is byte-identical to
    naive index-order execution.
    """
    technique = technique_by_name(config.technique)
    partial = CampaignResult(config=config, resolved_win_size=resolved_win_size)
    specs = [
        runner.seeded_spec(
            technique,
            max_mbf=config.max_mbf,
            win_size=resolved_win_size,
            seed=config.experiment_seed(index),
        )
        for index in range(start, start + count)
    ]
    order = sorted(range(len(specs)), key=lambda j: specs[j].first_dynamic_index)
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    phase_before = _phase_snapshot(runner)
    for j in order:
        results[j] = runner.run_spec(specs[j])
    partial.phase_seconds = _phase_delta(runner, phase_before)
    for experiment in results:
        partial.add_experiment(
            outcome=experiment.outcome,
            activated_errors=experiment.activated_errors,
            first_dynamic_index=experiment.spec.first_dynamic_index,
            first_slot=experiment.spec.first_slot,
            keep_record=keep_records,
        )
    return partial


def run_error_batch(
    runner: ExperimentRunner,
    technique_name: str,
    errors: Sequence[Tuple[int, Optional[int], int]],
) -> List[Outcome]:
    """Execute one batch of exhaustive single-bit errors; outcomes in order.

    Each error is a fully deterministic ``(dynamic_index, slot, bit)``
    triple (no RNG is consumed: the bit is pinned).  Like sampled batches,
    execution happens sorted by injection tick so consecutive experiments
    restore from the same fast-forward checkpoint, and results are merged
    back to submission order.
    """
    order = sorted(range(len(errors)), key=lambda j: errors[j][0])
    outcomes: List[Optional[Outcome]] = [None] * len(errors)
    for j in order:
        dynamic_index, slot, bit = errors[j]
        spec = FaultSpec(
            technique=technique_name,
            first_dynamic_index=dynamic_index,
            first_slot=slot,
            max_mbf=1,
            win_size=0,
            seed=0,
            first_bit=bit,
        )
        outcomes[j] = runner.run_spec(spec).outcome
    return outcomes


def persist_runner_artifacts(runner: ExperimentRunner) -> None:
    """Push a warm runner's derived artifacts into the artifact cache.

    Golden trace + checkpoints (fast-forwarding runners) and generated
    backend source (compiled runners).  No-op when no cache is active.
    Called by pooled engines before dispatch, so derivation happens once per
    host and spawned workers (which share only the disk) warm up from the
    cache.
    """
    if getattr(runner, "backend", None) == "compiled":
        from repro.vm.codegen import persist_compiled_source

        persist_compiled_source(runner.program.module)
    if not getattr(runner, "fast_forward", False):
        return
    from repro.vm.snapshot import persist_cached_golden

    persist_cached_golden(
        runner.program.module,
        entry=runner.program.entry,
        args=tuple(runner.args),
        checkpoint_interval=runner.checkpoint_interval,
        max_checkpoints=runner.max_checkpoints,
    )


class ExecutionEngine:
    """Interface every campaign execution backend implements."""

    #: Short name used in progress messages and benchmark labels.
    name: str = "?"

    #: Per-phase wall-clock seconds of the most recent :meth:`run_errors`
    #: call (restore / pre_window / window / tail), for the CLI summary.
    phase_seconds: dict = {}

    def run(
        self,
        config: CampaignConfig,
        *,
        provider: RunnerProvider,
        keep_records: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        """Execute every experiment of one campaign and aggregate the outcome."""
        raise NotImplementedError

    def run_errors(
        self,
        program: str,
        technique: str,
        errors: Sequence[Tuple[int, Optional[int], int]],
        *,
        provider: RunnerProvider,
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[Outcome]:
        """Execute deterministic single-bit errors; outcomes in input order.

        This is the execution path of exhaustive and pruned error-space
        campaigns (:mod:`repro.errorspace`).  The base implementation runs
        in-process; pooled engines override it with chunked dispatch.
        """
        runner = provider(program)
        total = len(errors)
        # Global tick sort first, then contiguous chunks: consecutive
        # experiments share fast-forward checkpoints across chunk borders.
        order = sorted(range(total), key=lambda j: errors[j][0])
        outcomes: List[Optional[Outcome]] = [None] * total
        started = time.monotonic()
        done = 0
        chunk = 256
        label = f"{program}/{technique}/error-space"
        phase_before = _phase_snapshot(runner)
        for start in range(0, total, chunk):
            positions = order[start : start + chunk]
            batch = [errors[j] for j in positions]
            for position, outcome in zip(positions, run_error_batch(runner, technique, batch)):
                outcomes[position] = outcome
            done += len(positions)
            if on_progress is not None:
                on_progress(
                    EngineProgress(
                        campaign_id=label,
                        done=done,
                        total=total,
                        elapsed_seconds=time.monotonic() - started,
                    )
                )
        self.phase_seconds = _phase_delta(runner, phase_before)
        return outcomes

    def plan_infer_map(self, program: str, *, provider: RunnerProvider):
        """An outcome-inference map for pruned-plan construction, or None.

        None means "infer in-process" (the serial default).  Pooled engines
        return a callable that chunk-dispatches the inference pass to their
        workers, so planning scales with ``--jobs`` exactly like execution.
        """
        return None

    def close(self) -> None:
        """Release any resources held by the engine (pools, workers)."""

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SerialEngine(ExecutionEngine):
    """Runs experiments one after another in the calling process."""

    name = "serial"

    def __init__(self, *, progress_interval: int = 25) -> None:
        if progress_interval < 1:
            raise ConfigurationError("progress_interval must be positive")
        self._interval = progress_interval

    def run(
        self,
        config: CampaignConfig,
        *,
        provider: RunnerProvider,
        keep_records: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        runner = provider(config.program)
        resolved = config.resolve_win_size()
        result = CampaignResult(config=config, resolved_win_size=resolved)
        started = time.monotonic()
        done = 0
        while done < config.experiments:
            count = min(self._interval, config.experiments - done)
            result.merge(
                run_experiment_batch(
                    runner, config, resolved, done, count, keep_records=keep_records
                )
            )
            done += count
            if on_progress is not None:
                on_progress(
                    EngineProgress(
                        campaign_id=config.campaign_id,
                        done=done,
                        total=config.experiments,
                        elapsed_seconds=time.monotonic() - started,
                    )
                )
        return result


# -- multiprocess worker plumbing ---------------------------------------------------
#
# Workers are initialised once per process: the provider compiles the
# workload, decodes it into executable form and profiles the golden trace,
# then every batch reuses all three.  Module-level state is required because
# multiprocessing initialisers cannot return values.

_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _initialise_worker(provider: Optional[RunnerProvider], program_name: str) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = (provider or registry_provider)(program_name)


def _run_worker_batch(
    task: Tuple[CampaignConfig, int, int, int, bool]
) -> CampaignResult:
    config, resolved_win_size, start, count, keep_records = task
    assert _WORKER_RUNNER is not None, "worker pool was not initialised"
    return run_experiment_batch(
        _WORKER_RUNNER, config, resolved_win_size, start, count, keep_records=keep_records
    )


def _run_worker_error_batch(
    task: Tuple[str, List[Tuple[int, Optional[int], int]]]
) -> Tuple[List[Outcome], dict]:
    technique, errors = task
    assert _WORKER_RUNNER is not None, "worker pool was not initialised"
    phase_before = _phase_snapshot(_WORKER_RUNNER)
    outcomes = run_error_batch(_WORKER_RUNNER, technique, errors)
    return outcomes, _phase_delta(_WORKER_RUNNER, phase_before)


_WORKER_INFERENCE = None


def _initialise_infer_worker(provider, program_name: str) -> None:
    """Build (or cache-load) the def-use index + inference engine once."""
    global _WORKER_INFERENCE
    if provider is not None and hasattr(provider, "prepare"):
        provider.prepare()
    from repro.errorspace.inference import OutcomeInference
    from repro.programs.registry import get_defuse_index

    _WORKER_INFERENCE = OutcomeInference(get_defuse_index(program_name))


def _run_worker_infer_batch(
    errors: List[Tuple[int, Optional[int], int]]
) -> List[Optional[Outcome]]:
    engine = _WORKER_INFERENCE
    assert engine is not None, "inference worker pool was not initialised"
    from repro.errorspace.enumerate import SingleBitError

    return [
        engine.infer(
            SingleBitError(
                ordinal=0,
                dynamic_index=dynamic_index,
                slot=slot,
                bit=bit,
                register_bits=0,
                opcode="",
            )
        )
        for dynamic_index, slot, bit in errors
    ]


class MultiprocessEngine(ExecutionEngine):
    """Fans experiment batches out to a ``multiprocessing`` worker pool.

    Each worker process holds exactly one compiled workload + golden trace;
    experiments are dispatched as contiguous index chunks and the partial
    results are merged in submission order, so the assembled campaign result
    is bit-identical to a :class:`SerialEngine` run of the same config.

    The default start method is ``fork`` where available (Linux), which lets
    workers inherit already-compiled workloads and makes arbitrary provider
    callables (closures included) usable.  Under ``spawn`` the provider must
    be picklable; the default registry provider is.
    """

    name = "multiprocess"

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        resolved_jobs = jobs if jobs is not None else available_cpus()
        if resolved_jobs < 1:
            raise ConfigurationError("a worker pool needs at least one job")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be positive")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.jobs = resolved_jobs
        self._chunk_size = chunk_size
        self._start_method = start_method

    def _warm_provider(self, provider: RunnerProvider, program: str) -> None:
        """Warm the parent once before dispatch.

        Under ``fork`` this lets workers inherit the compiled workload,
        decoded program and golden trace.  Whenever the artifact cache is
        active — any start method — the warm runner's artifacts are also
        persisted to disk, so derivation happens once per host and spawned
        workers load instead of re-deriving.
        """
        from repro import artifacts

        if hasattr(provider, "prepare"):
            provider.prepare()
        cache_active = artifacts.active_cache() is not None
        if self._start_method == "fork" or cache_active:
            runner = provider(program)
            if cache_active:
                persist_runner_artifacts(runner)

    def _batches(self, total: int) -> List[Tuple[int, int]]:
        chunk = self._chunk_size
        if chunk is None:
            # Aim for ~4 batches per worker so stragglers rebalance, capped to
            # keep per-batch IPC payloads small.
            chunk = max(1, min(64, -(-total // (self.jobs * 4))))
        return [(start, min(chunk, total - start)) for start in range(0, total, chunk)]

    def run(
        self,
        config: CampaignConfig,
        *,
        provider: RunnerProvider,
        keep_records: bool = True,
        on_progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        resolved = config.resolve_win_size()
        result = CampaignResult(config=config, resolved_win_size=resolved)
        batches = self._batches(config.experiments)
        tasks = [
            (config, resolved, start, count, keep_records) for start, count in batches
        ]
        context = multiprocessing.get_context(self._start_method)
        self._warm_provider(provider, config.program)
        started = time.monotonic()
        done = 0
        with context.Pool(
            processes=min(self.jobs, len(batches)),
            initializer=_initialise_worker,
            initargs=(provider, config.program),
        ) as pool:
            # imap yields partials in submission order, which keeps the merged
            # record stream identical to a serial run.
            for partial in pool.imap(_run_worker_batch, tasks):
                result.merge(partial)
                done += partial.experiments
                if on_progress is not None:
                    on_progress(
                        EngineProgress(
                            campaign_id=config.campaign_id,
                            done=done,
                            total=config.experiments,
                            elapsed_seconds=time.monotonic() - started,
                        )
                    )
        return result

    def run_errors(
        self,
        program: str,
        technique: str,
        errors: Sequence[Tuple[int, Optional[int], int]],
        *,
        provider: RunnerProvider,
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[Outcome]:
        total = len(errors)
        if total == 0:
            return []
        # Tick-sorted contiguous chunks: every worker's batch is a dense
        # slice of injection times, maximising checkpoint reuse per process.
        order = sorted(range(total), key=lambda j: errors[j][0])
        chunk = self._chunk_size
        if chunk is None:
            chunk = max(32, min(512, -(-total // (self.jobs * 4))))
        tasks = [
            (technique, [errors[j] for j in order[start : start + chunk]])
            for start in range(0, total, chunk)
        ]
        context = multiprocessing.get_context(self._start_method)
        self._warm_provider(provider, program)
        outcomes: List[Optional[Outcome]] = [None] * total
        started = time.monotonic()
        done = 0
        label = f"{program}/{technique}/error-space"
        phase_totals: dict = {}
        with context.Pool(
            processes=min(self.jobs, len(tasks)),
            initializer=_initialise_worker,
            initargs=(provider, program),
        ) as pool:
            for task_index, (batch_outcomes, batch_phases) in enumerate(
                pool.imap(_run_worker_error_batch, tasks)
            ):
                positions = order[task_index * chunk : task_index * chunk + len(batch_outcomes)]
                for position, outcome in zip(positions, batch_outcomes):
                    outcomes[position] = outcome
                for phase, seconds in batch_phases.items():
                    phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
                done += len(batch_outcomes)
                if on_progress is not None:
                    on_progress(
                        EngineProgress(
                            campaign_id=label,
                            done=done,
                            total=total,
                            elapsed_seconds=time.monotonic() - started,
                        )
                    )
        self.phase_seconds = phase_totals
        return outcomes

    def plan_infer_map(self, program: str, *, provider: RunnerProvider):
        """Chunk-dispatch the planner's inference pass to the worker pool.

        Each worker builds (or cache-loads) the workload's def-use index and
        inference engine once, then maps deterministic ``(tick, slot, bit)``
        chunks to outcomes.  Results are order-preserving, so the assembled
        plan is bit-identical to a serial build.  Only registry programs are
        dispatchable (workers resolve the index by name).
        """

        from repro import artifacts

        if self._start_method != "fork" and artifacts.active_cache() is None:
            # Spawned workers share neither memory nor a disk cache: each
            # would re-derive the golden trace and def-use index from
            # scratch, which costs more than it saves.  Plan serially.
            return None

        def infer_map(errors):
            total = len(errors)
            if total == 0:
                return []
            triples = [
                (error.dynamic_index, error.slot, error.bit) for error in errors
            ]
            chunk = max(1024, min(16384, -(-total // (self.jobs * 4))))
            tasks = [triples[start : start + chunk] for start in range(0, total, chunk)]
            self._warm_provider(provider, program)
            # Make sure workers can load the def-use index from the cache
            # instead of replaying the golden trace per process.
            from repro import artifacts

            if artifacts.active_cache() is not None:
                from repro.programs.registry import get_defuse_index

                get_defuse_index(program)
            context = multiprocessing.get_context(self._start_method)
            outcomes: List[Optional[Outcome]] = []
            with context.Pool(
                processes=min(self.jobs, len(tasks)),
                initializer=_initialise_infer_worker,
                initargs=(provider, program),
            ) as pool:
                for batch in pool.imap(_run_worker_infer_batch, tasks):
                    outcomes.extend(batch)
            return outcomes

        return infer_map
