"""histo (Parboil / base).

Computes a 2-D saturating histogram with a maximum bin count of 255 over a
fixed pseudo-random input image, matching Parboil's ``histo`` description in
the paper's Table II.  The inner loop is a load, an index computation, a
saturating increment and a store — a mixture of data and address operations.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import lcg_sequence

#: Number of input samples histogrammed.
SAMPLE_COUNT = 160
#: Histogram dimensions (bins = HIST_WIDTH * HIST_HEIGHT).
HIST_WIDTH = 8
HIST_HEIGHT = 8
#: Saturation limit per bin (uint8 semantics from the original benchmark).
SATURATION = 255

_MAIN_TEMPLATE = '''
def main() -> "i64":
    bins = {bins}
    histogram = array("i32", bins)
    for bin_index in range(bins):
        histogram[bin_index] = 0
    for sample_index in range({samples}):
        value = samples[sample_index]
        row = (value // {width}) % {height}
        col = value % {width}
        bin_index = row * {width} + col
        if histogram[bin_index] < {saturation}:
            histogram[bin_index] = histogram[bin_index] + 1
    checksum = 0
    occupied = 0
    peak = 0
    for bin_index in range(bins):
        count = histogram[bin_index]
        checksum += count * (bin_index + 1)
        if count > 0:
            occupied += 1
        if count > peak:
            peak = count
    output(checksum)
    output(occupied)
    output(peak)
    return checksum
'''


def build() -> CompiledProgram:
    """Compile the histo workload over a fixed pseudo-random sample stream."""
    samples = lcg_sequence(seed=888, count=SAMPLE_COUNT, modulus=HIST_WIDTH * HIST_HEIGHT * 3)
    main_source = _MAIN_TEMPLATE.format(
        bins=HIST_WIDTH * HIST_HEIGHT,
        samples=SAMPLE_COUNT,
        width=HIST_WIDTH,
        height=HIST_HEIGHT,
        saturation=SATURATION,
    )
    return compile_program("histo", [main_source], {"samples": ("i32", samples)})


DEFINITION = ProgramDefinition(
    name="histo",
    suite="parboil",
    package="base",
    description="2-D saturating histogram (max bin count 255) of an input stream.",
    builder=build,
)
