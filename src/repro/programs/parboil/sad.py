"""sad (Parboil / cpu).

Sum of absolute differences (SAD) motion-estimation kernel: for each 4×4
block of the current frame, evaluate the SAD against the reference frame at
a small set of candidate displacements and keep the best one — the core of
Parboil's ``sad`` benchmark.  The reference frame is the current frame
shifted by one pixel, so the winning displacement is deterministic.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import block_image_pair

#: Frame dimensions (pixels).
WIDTH = 8
HEIGHT = 4
#: Block size used for the SAD computation.
BLOCK = 4
#: Search displacement range: dx, dy in [-RANGE, RANGE].
SEARCH_RANGE = 1

_SAD_FUNCTION = '''
def block_sad(block_row: "i64", block_col: "i64", delta_row: "i64", delta_col: "i64") -> "i64":
    """SAD of one {block}x{block} block at the given displacement (clamped)."""
    total = 0
    for row in range({block}):
        for col in range({block}):
            current_row = block_row + row
            current_col = block_col + col
            reference_row = current_row + delta_row
            reference_col = current_col + delta_col
            if reference_row < 0:
                reference_row = 0
            if reference_row > {height} - 1:
                reference_row = {height} - 1
            if reference_col < 0:
                reference_col = 0
            if reference_col > {width} - 1:
                reference_col = {width} - 1
            difference = current[current_row * {width} + current_col] - reference[reference_row * {width} + reference_col]
            if difference < 0:
                difference = -difference
            total += difference
    return total
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    best_sum = 0
    displacement_sum = 0
    block_rows = {height} // {block}
    block_cols = {width} // {block}
    for block_row_index in range(block_rows):
        for block_col_index in range(block_cols):
            block_row = block_row_index * {block}
            block_col = block_col_index * {block}
            best_sad = 1000000
            best_dx = 0
            best_dy = 0
            for delta_row in range(-{search}, {search} + 1):
                for delta_col in range(-{search}, {search} + 1):
                    candidate = block_sad(block_row, block_col, delta_row, delta_col)
                    if candidate < best_sad:
                        best_sad = candidate
                        best_dy = delta_row
                        best_dx = delta_col
            best_sum += best_sad
            displacement_sum += best_dx + best_dy * 10
    output(best_sum)
    output(displacement_sum)
    return best_sum
'''


def build() -> CompiledProgram:
    """Compile the sad workload over a fixed current/reference frame pair."""
    current, reference = block_image_pair(WIDTH, HEIGHT, seed=4242)
    sad_source = _SAD_FUNCTION.format(block=BLOCK, width=WIDTH, height=HEIGHT)
    main_source = _MAIN_TEMPLATE.format(
        block=BLOCK, width=WIDTH, height=HEIGHT, search=SEARCH_RANGE
    )
    return compile_program(
        "sad",
        [sad_source, main_source],
        {"current": ("i32", current), "reference": ("i32", reference)},
    )


DEFINITION = ProgramDefinition(
    name="sad",
    suite="parboil",
    package="cpu",
    description="Sum-of-absolute-differences motion estimation over 4x4 blocks.",
    builder=build,
)
