"""Parboil workloads (base and CPU implementation packages).

Four programs, matching the Parboil rows of the paper's Table II: bfs and
histo from the base package, sad and spmv from the CPU package.
"""
