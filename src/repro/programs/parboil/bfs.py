"""bfs (Parboil / base).

Breadth-first search computing the shortest-path cost (in hops) from a
single source node to every reachable node of an irregular graph with
uniform edge weights — the same computation Parboil's ``bfs`` performs on a
graph derived from the map of New York, here on a synthetic CSR graph.
Queue management and CSR indexing make this another address-heavy workload.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import edge_list_graph

#: Number of graph nodes.
NODE_COUNT = 24

_BFS = '''
def breadth_first_search(source: "i64", cost: "i32*", queue: "i32*") -> "i64":
    """Fill cost[] with hop counts from source; return number of visited nodes."""
    nodes = {nodes}
    for node in range(nodes):
        cost[node] = -1
    cost[source] = 0
    queue[0] = source
    head = 0
    tail = 1
    visited = 0
    while head < tail:
        current = queue[head]
        head += 1
        visited += 1
        first_edge = offsets[current]
        last_edge = offsets[current + 1]
        for edge_index in range(first_edge, last_edge):
            neighbour = edges[edge_index]
            if cost[neighbour] < 0:
                cost[neighbour] = cost[current] + 1
                queue[tail] = neighbour
                tail += 1
    return visited
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    nodes = {nodes}
    cost = array("i32", nodes)
    queue = array("i32", nodes + 1)
    visited = breadth_first_search(0, cost, queue)
    cost_sum = 0
    max_cost = 0
    for node in range(nodes):
        if cost[node] > 0:
            cost_sum += cost[node]
            if cost[node] > max_cost:
                max_cost = cost[node]
    output(visited)
    output(cost_sum)
    output(max_cost)
    output(cost[nodes - 1])
    return cost_sum
'''


def build() -> CompiledProgram:
    """Compile the bfs workload over a fixed irregular CSR graph."""
    offsets, edges = edge_list_graph(NODE_COUNT, seed=555)
    return compile_program(
        "bfs",
        [_BFS.format(nodes=NODE_COUNT), _MAIN_TEMPLATE.format(nodes=NODE_COUNT)],
        {"offsets": ("i32", offsets), "edges": ("i32", edges)},
    )


DEFINITION = ProgramDefinition(
    name="bfs",
    suite="parboil",
    package="base",
    description=(
        "Breadth-first search shortest-path hop costs from a single node of "
        "an irregular uniform-weight graph."
    ),
    builder=build,
)
