"""spmv (Parboil / cpu).

Sparse matrix–vector multiplication with the matrix stored in coordinate
(COO) format, matching the paper's description of Parboil ``spmv`` with its
small input.  The product is computed twice (y = A·x, then z = A·y) to give
the workload a little more dynamic depth, and checksums of the result
vectors are emitted.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import dense_vector, sparse_matrix_coo

#: Matrix dimensions and nominal number of nonzeros.
ROWS = 20
COLS = 20
NONZEROS = 70

_SPMV = '''
def spmv_coo(values_count: "i64", result: "f64*", vector: "f64*") -> None:
    """result = A * vector with A given by the COO triplets in the globals."""
    for row in range({rows}):
        result[row] = 0.0
    for index in range(values_count):
        row = coo_rows[index]
        col = coo_cols[index]
        result[row] = result[row] + coo_values[index] * vector[col]
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    nonzeros = {nonzeros}
    first_result = array("f64", {rows})
    second_result = array("f64", {rows})
    dense = array("f64", {cols})
    for col in range({cols}):
        dense[col] = x_vector[col]
    spmv_coo(nonzeros, first_result, dense)
    spmv_coo(nonzeros, second_result, first_result)
    first_checksum = 0.0
    second_checksum = 0.0
    for row in range({rows}):
        first_checksum = first_checksum + first_result[row]
        second_checksum = second_checksum + second_result[row] * (row + 1)
    output(first_checksum)
    output(second_checksum)
    output(first_result[0])
    output(second_result[{rows} - 1])
    return {nonzeros}
'''


def build() -> CompiledProgram:
    """Compile the spmv workload over a fixed COO sparse matrix."""
    rows, cols, values = sparse_matrix_coo(ROWS, COLS, NONZEROS, seed=2020)
    vector = dense_vector(COLS, seed=2021)
    main_source = _MAIN_TEMPLATE.format(rows=ROWS, cols=COLS, nonzeros=len(values))
    return compile_program(
        "spmv",
        [_SPMV.format(rows=ROWS), main_source],
        {
            "coo_rows": ("i32", rows),
            "coo_cols": ("i32", cols),
            "coo_values": ("f64", values),
            "x_vector": ("f64", vector),
        },
    )


DEFINITION = ProgramDefinition(
    name="spmv",
    suite="parboil",
    package="cpu",
    description="Sparse matrix (COO) times dense vector, applied twice.",
    builder=build,
)
