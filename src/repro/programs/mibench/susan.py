"""susan corners / edges / smoothing (MiBench / automotive).

SUSAN (Smallest Univalue Segment Assimilating Nucleus) is an image
processing benchmark operating on a black & white image of a rectangle.
MiBench runs it in three modes, which the paper treats as three separate
programs; we do the same:

* **susan_smoothing** — brightness-similarity weighted smoothing over a
  neighbourhood mask;
* **susan_edges** — USAN area per pixel against a geometric threshold
  yields an edge response;
* **susan_corners** — a smaller geometric threshold plus a non-maximum-like
  count yields corner candidates.

All three scan the image with nested loops and neighbourhood index
arithmetic, giving the address-heavy profile that makes detection (crash)
rates higher than for pure data benchmarks like basicmath or CRC32.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import rectangle_image

#: Image dimensions for all three susan modes (MiBench uses a larger image;
#: the rectangle structure, not the size, is what drives the control flow).
WIDTH = 8
HEIGHT = 8
#: Brightness similarity threshold (MiBench's default is 20 for smoothing).
BRIGHTNESS_THRESHOLD = 20


_SIMILARITY = '''
def brightness_similar(center: "i64", neighbour: "i64") -> "i64":
    """1 when the neighbour's brightness is within the threshold of center."""
    difference = neighbour - center
    if difference < 0:
        difference = -difference
    if difference <= {threshold}:
        return 1
    return 0
'''.format(threshold=BRIGHTNESS_THRESHOLD)


_SMOOTHING_MAIN = '''
def main() -> "i64":
    width = {width}
    height = {height}
    smoothed = array("i32", {pixels})
    for index in range({pixels}):
        smoothed[index] = image[index]
    checksum = 0
    for row in range(1, height - 1):
        for col in range(1, width - 1):
            center = image[row * width + col]
            weighted_sum = 0
            weight_total = 0
            for delta_row in range(-1, 2):
                for delta_col in range(-1, 2):
                    neighbour = image[(row + delta_row) * width + (col + delta_col)]
                    weight = brightness_similar(center, neighbour) * 2 + 1
                    weighted_sum += neighbour * weight
                    weight_total += weight
            smoothed[row * width + col] = weighted_sum // weight_total
            checksum += smoothed[row * width + col]
    output(checksum)
    output(smoothed[(height // 2) * width + width // 2])
    output(smoothed[width + 1])
    return checksum
'''

_EDGES_MAIN = '''
def main() -> "i64":
    width = {width}
    height = {height}
    edge_count = 0
    response_sum = 0
    for row in range(1, height - 1):
        for col in range(1, width - 1):
            center = image[row * width + col]
            usan_area = 0
            for delta_row in range(-1, 2):
                for delta_col in range(-1, 2):
                    if delta_row != 0 or delta_col != 0:
                        neighbour = image[(row + delta_row) * width + (col + delta_col)]
                        usan_area += brightness_similar(center, neighbour)
            geometric_threshold = 6
            if usan_area < geometric_threshold:
                response = geometric_threshold - usan_area
                edge_count += 1
                response_sum += response * (row * width + col)
    output(edge_count)
    output(response_sum)
    return edge_count
'''

_CORNERS_MAIN = '''
def main() -> "i64":
    width = {width}
    height = {height}
    corner_count = 0
    position_sum = 0
    for row in range(2, height - 2):
        for col in range(2, width - 2):
            center = image[row * width + col]
            usan_area = 0
            for delta_row in range(-2, 3):
                for delta_col in range(-2, 3):
                    if delta_row != 0 or delta_col != 0:
                        if delta_row * delta_row + delta_col * delta_col <= 4:
                            neighbour = image[(row + delta_row) * width + (col + delta_col)]
                            usan_area += brightness_similar(center, neighbour)
            geometric_threshold = 6
            if usan_area < geometric_threshold:
                corner_count += 1
                position_sum += row * width + col
    output(corner_count)
    output(position_sum)
    return corner_count
'''


def _build_mode(name: str, main_source: str) -> CompiledProgram:
    image = rectangle_image(WIDTH, HEIGHT)
    return compile_program(
        name,
        [_SIMILARITY, main_source.format(width=WIDTH, height=HEIGHT, pixels=WIDTH * HEIGHT)],
        {"image": ("i32", image)},
    )


def build_smoothing() -> CompiledProgram:
    return _build_mode("susan_smoothing", _SMOOTHING_MAIN)


def build_edges() -> CompiledProgram:
    return _build_mode("susan_edges", _EDGES_MAIN)


def build_corners() -> CompiledProgram:
    return _build_mode("susan_corners", _CORNERS_MAIN)


SMOOTHING_DEFINITION = ProgramDefinition(
    name="susan_smoothing",
    suite="mibench",
    package="automotive",
    description="Smooths a black & white image of a rectangle.",
    builder=build_smoothing,
)

EDGES_DEFINITION = ProgramDefinition(
    name="susan_edges",
    suite="mibench",
    package="automotive",
    description="Finds edges in a black & white image of a rectangle.",
    builder=build_edges,
)

CORNERS_DEFINITION = ProgramDefinition(
    name="susan_corners",
    suite="mibench",
    package="automotive",
    description="Finds corners in a black & white image of a rectangle.",
    builder=build_corners,
)
