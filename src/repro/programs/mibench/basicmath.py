"""basicmath (MiBench / automotive).

Performs the same families of calculations as MiBench's ``basicmath_small``:
cubic equation solving (Cardano / trigonometric method), integer square
roots, and angle conversions between degrees and radians, over a fixed set
of constant coefficients.

The workload is dominated by floating-point data computation with very few
memory accesses, which is exactly why the paper observes the *lowest*
detection rate (and hence the highest SDC rate) for basicmath — most flipped
bits end up in data values that flow straight to the output instead of being
caught by a hardware exception.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition

#: Number of cubic-equation coefficient sets solved by the workload.
CUBIC_SETS = 12
#: Number of integer square roots computed.
USQRT_COUNT = 16

_SOLVE_CUBIC = '''
def solve_cubic(a: "f64", b: "f64", c: "f64", d: "f64", roots: "f64*") -> "i64":
    """Store the real roots of a*x^3 + b*x^2 + c*x + d in roots; return count."""
    a1 = b / a
    a2 = c / a
    a3 = d / a
    q = (a1 * a1 - 3.0 * a2) / 9.0
    r = (2.0 * a1 * a1 * a1 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0
    q_cubed = q * q * q
    determinant = q_cubed - r * r
    if determinant >= 0.0:
        if q_cubed <= 0.0:
            roots[0] = -a1 / 3.0
            return 1
        theta = acos(r / sqrt(q_cubed))
        sqrt_q = sqrt(q)
        roots[0] = -2.0 * sqrt_q * cos(theta / 3.0) - a1 / 3.0
        roots[1] = -2.0 * sqrt_q * cos((theta + 2.0 * 3.141592653589793) / 3.0) - a1 / 3.0
        roots[2] = -2.0 * sqrt_q * cos((theta - 2.0 * 3.141592653589793) / 3.0) - a1 / 3.0
        return 3
    magnitude = pow(sqrt(r * r - q_cubed) + fabs(r), 1.0 / 3.0)
    if r < 0.0:
        roots[0] = (magnitude + q / magnitude) - a1 / 3.0
    else:
        roots[0] = -(magnitude + q / magnitude) - a1 / 3.0
    return 1
'''

_USQRT = '''
def usqrt(value: "i64") -> "i64":
    """Integer square root via the classic bit-by-bit method."""
    answer = 0
    remainder = value
    place = 1 << 30
    while place > remainder:
        place = place >> 2
    while place != 0:
        candidate = answer + place
        if remainder >= candidate:
            remainder = remainder - candidate
            answer = candidate + place
        place = place >> 2
        answer = answer >> 1
    return answer
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    roots = array("f64", 4)
    total_roots = 0
    root_sum = 0.0
    for index in range({cubic_sets}):
        a = 1.0
        b = coeff_b[index]
        c = coeff_c[index]
        d = coeff_d[index]
        count = solve_cubic(a, b, c, d, roots)
        total_roots += count
        for k in range(count):
            root_sum = root_sum + roots[k]
    output(total_roots)
    output(root_sum)

    sqrt_sum = 0
    for index in range({usqrt_count}):
        sqrt_sum += usqrt(squares[index])
    output(sqrt_sum)

    angle_sum = 0.0
    degree = 0.0
    while degree < 360.0:
        radian = degree * 3.141592653589793 / 180.0
        angle_sum = angle_sum + radian
        degree = degree + 30.0
    output(angle_sum)
    return total_roots + sqrt_sum
'''


def build() -> CompiledProgram:
    """Compile the basicmath workload with its fixed coefficient sets."""
    coeff_b = [float(b) for b in (-10, -6, -4, -2, 0, 2, 4, 6, 8, 10, -8, 3)][:CUBIC_SETS]
    coeff_c = [float(c) for c in (28, 11, 5, -1, -7, 3, 9, 15, 21, 27, 14, -5)][:CUBIC_SETS]
    coeff_d = [float(d) for d in (-24, -6, 2, 8, 14, -20, 26, -32, 38, -44, 50, 7)][:CUBIC_SETS]
    squares = [(3 * k + 1) * (3 * k + 1) + k for k in range(USQRT_COUNT)]

    main_source = _MAIN_TEMPLATE.format(cubic_sets=CUBIC_SETS, usqrt_count=USQRT_COUNT)
    return compile_program(
        "basicmath",
        [_SOLVE_CUBIC, _USQRT, main_source],
        {
            "coeff_b": ("f64", coeff_b),
            "coeff_c": ("f64", coeff_c),
            "coeff_d": ("f64", coeff_d),
            "squares": ("i64", squares),
        },
    )


DEFINITION = ProgramDefinition(
    name="basicmath",
    suite="mibench",
    package="automotive",
    description=(
        "Mathematical calculations such as cubic equation solving, integer "
        "square roots and degree/radian conversions on a set of constants."
    ),
    builder=build,
)
