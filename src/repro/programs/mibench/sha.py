"""sha (MiBench / security).

SHA-1 over a single padded 64-byte block of ASCII text: the full message
schedule expansion (80 words) and 80 compression rounds with the standard
round constants, all performed in 32-bit arithmetic emulated with explicit
masking on 64-bit registers.  Produces the five 32-bit state words of the
digest.  A data-heavy workload with plenty of bitwise mixing — single bit
flips in the data path almost always change the digest (SDC) unless caught
by an address fault on the message schedule array.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import ascii_text

#: Length of the (unpadded) ASCII message in bytes; must fit one SHA-1 block.
MESSAGE_LENGTH = 40

_HELPERS = '''
def rotate_left(value: "i64", amount: "i64") -> "i64":
    """32-bit left rotation."""
    mask = 4294967295
    left = (value << amount) & mask
    right = (value & mask) >> (32 - amount)
    return (left | right) & mask
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    mask = 4294967295
    block = array("i64", 64)
    for index in range(64):
        block[index] = 0
    for index in range({length}):
        block[index] = message[index] & 255
    block[{length}] = 128
    bit_length = {length} * 8
    block[62] = (bit_length >> 8) & 255
    block[63] = bit_length & 255

    schedule = array("i64", 80)
    for word in range(16):
        schedule[word] = (
            (block[word * 4] << 24)
            | (block[word * 4 + 1] << 16)
            | (block[word * 4 + 2] << 8)
            | block[word * 4 + 3]
        ) & mask
    for word in range(16, 80):
        mixed = schedule[word - 3] ^ schedule[word - 8] ^ schedule[word - 14] ^ schedule[word - 16]
        schedule[word] = rotate_left(mixed, 1)

    state_a = 1732584193
    state_b = 4023233417
    state_c = 2562383102
    state_d = 271733878
    state_e = 3285377520

    for round_index in range(80):
        if round_index < 20:
            f = (state_b & state_c) | ((state_b ^ mask) & state_d)
            k = 1518500249
        elif round_index < 40:
            f = state_b ^ state_c ^ state_d
            k = 1859775393
        elif round_index < 60:
            f = (state_b & state_c) | (state_b & state_d) | (state_c & state_d)
            k = 2400959708
        else:
            f = state_b ^ state_c ^ state_d
            k = 3395469782
        temp = (rotate_left(state_a, 5) + f + state_e + k + schedule[round_index]) & mask
        state_e = state_d
        state_d = state_c
        state_c = rotate_left(state_b, 30)
        state_b = state_a
        state_a = temp

    digest0 = (1732584193 + state_a) & mask
    digest1 = (4023233417 + state_b) & mask
    digest2 = (2562383102 + state_c) & mask
    digest3 = (271733878 + state_d) & mask
    digest4 = (3285377520 + state_e) & mask
    output(digest0)
    output(digest1)
    output(digest2)
    output(digest3)
    output(digest4)
    return digest0 ^ digest4
'''


def build() -> CompiledProgram:
    """Compile the SHA-1 workload over a fixed ASCII message."""
    message = ascii_text(seed=99, length=MESSAGE_LENGTH)
    return compile_program(
        "sha",
        [_HELPERS, _MAIN_TEMPLATE.format(length=MESSAGE_LENGTH)],
        {"message": ("i32", message)},
    )


DEFINITION = ProgramDefinition(
    name="sha",
    suite="mibench",
    package="security",
    description="SHA-1 digest of a fixed ASCII message (one padded block).",
    builder=build,
)
