"""FFT / IFFT (MiBench / telecomm).

An iterative radix-2 Cooley-Tukey Fast Fourier Transform over a fixed
mixture of sinusoids, plus the inverse-transform workload that runs the
forward FFT followed by the inverse FFT and reports the reconstruction
error.  Floating-point butterflies with trigonometric twiddle factors, a
bit-reversal permutation, and strided array indexing.
"""

from __future__ import annotations

import math

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition

#: Transform size (power of two).  MiBench uses 4096/8192 waves; the butterfly
#: structure is identical at any power of two.
POINTS = 16
_STAGES = POINTS.bit_length() - 1


_BIT_REVERSE = '''
def bit_reverse(value: "i64", bits: "i64") -> "i64":
    """Reverse the lowest ``bits`` bits of ``value``."""
    result = 0
    remaining = value
    for _ in range(bits):
        result = (result << 1) | (remaining & 1)
        remaining = remaining >> 1
    return result
'''

_FFT_KERNEL = '''
def fft_in_place(real: "f64*", imag: "f64*", points: "i64", inverse: "i64") -> None:
    """Iterative radix-2 FFT; inverse=1 runs the inverse transform."""
    bits = {stages}
    for index in range(points):
        swapped = bit_reverse(index, bits)
        if swapped > index:
            temp_real = real[index]
            real[index] = real[swapped]
            real[swapped] = temp_real
            temp_imag = imag[index]
            imag[index] = imag[swapped]
            imag[swapped] = temp_imag
    length = 2
    while length <= points:
        angle_step = 2.0 * 3.141592653589793 / length
        if inverse == 0:
            angle_step = -angle_step
        half = length // 2
        start = 0
        while start < points:
            for k in range(half):
                angle = angle_step * k
                twiddle_real = cos(angle)
                twiddle_imag = sin(angle)
                even_index = start + k
                odd_index = start + k + half
                product_real = real[odd_index] * twiddle_real - imag[odd_index] * twiddle_imag
                product_imag = real[odd_index] * twiddle_imag + imag[odd_index] * twiddle_real
                real[odd_index] = real[even_index] - product_real
                imag[odd_index] = imag[even_index] - product_imag
                real[even_index] = real[even_index] + product_real
                imag[even_index] = imag[even_index] + product_imag
            start += length
        length = length * 2
    if inverse != 0:
        for index in range(points):
            real[index] = real[index] / points
            imag[index] = imag[index] / points
'''

_FFT_MAIN = '''
def main() -> "i64":
    points = {points}
    real = array("f64", points)
    imag = array("f64", points)
    for index in range(points):
        real[index] = wave[index]
        imag[index] = 0.0
    fft_in_place(real, imag, points, 0)
    energy = 0.0
    for index in range(points):
        energy = energy + real[index] * real[index] + imag[index] * imag[index]
    output(energy)
    output(real[1])
    output(imag[1])
    output(real[points // 2])
    return points
'''

_IFFT_MAIN = '''
def main() -> "i64":
    points = {points}
    real = array("f64", points)
    imag = array("f64", points)
    for index in range(points):
        real[index] = wave[index]
        imag[index] = 0.0
    fft_in_place(real, imag, points, 0)
    fft_in_place(real, imag, points, 1)
    error = 0.0
    for index in range(points):
        difference = real[index] - wave[index]
        error = error + fabs(difference) + fabs(imag[index])
    output(error)
    output(real[0])
    output(real[points - 1])
    return points
'''


def _wave_samples() -> list:
    """A fixed mixture of three sinusoids (MiBench synthesises random waves)."""
    samples = []
    for index in range(POINTS):
        phase = 2.0 * math.pi * index / POINTS
        samples.append(
            1.0 * math.sin(phase) + 0.5 * math.sin(3.0 * phase) + 0.25 * math.cos(5.0 * phase)
        )
    return samples


def _build(name: str, main_template: str) -> CompiledProgram:
    sources = [
        _BIT_REVERSE,
        _FFT_KERNEL.format(stages=_STAGES),
        main_template.format(points=POINTS),
    ]
    return compile_program(name, sources, {"wave": ("f64", _wave_samples())})


def build_fft() -> CompiledProgram:
    return _build("fft", _FFT_MAIN)


def build_ifft() -> CompiledProgram:
    return _build("ifft", _IFFT_MAIN)


FFT_DEFINITION = ProgramDefinition(
    name="fft",
    suite="mibench",
    package="telecomm",
    description="Fast Fourier Transform of a fixed mixture of sinusoids.",
    builder=build_fft,
)

IFFT_DEFINITION = ProgramDefinition(
    name="ifft",
    suite="mibench",
    package="telecomm",
    description="Inverse FFT (forward + inverse transform, reconstruction error).",
    builder=build_ifft,
)
