"""MiBench workloads (automotive, telecomm, network, security, office).

Eleven programs, matching the MiBench rows of the paper's Table II:
basicmath, qsort, susan (corners / edges / smoothing), FFT, IFFT, CRC32,
dijkstra, sha and stringsearch.
"""
