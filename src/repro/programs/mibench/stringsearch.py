"""stringsearch (MiBench / office).

Case-insensitive search of several key words inside several phrases, like
MiBench's ``stringsearch`` (which uses Pratt/Boyer-Moore variants over a set
of phrases).  The workload here uses the straightforward shift-and-compare
search over byte arrays; the control flow is dominated by character loads,
comparisons and early exits.
"""

from __future__ import annotations

from typing import List

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import ascii_text, embed_word

#: Length of each phrase searched (bytes).
PHRASE_LENGTH = 32
#: The search patterns; each is embedded in exactly one phrase.
PATTERNS = ("orbit", "fault", "hello")


_TO_LOWER = '''
def to_lower(char: "i64") -> "i64":
    """ASCII lower-casing of a single character code."""
    if char >= 65 and char <= 90:
        return char + 32
    return char
'''

_SEARCH = '''
def find_pattern(phrase: "i8*", phrase_length: "i64", pattern: "i8*", pattern_length: "i64") -> "i64":
    """Index of the first case-insensitive match, or -1 when absent."""
    limit = phrase_length - pattern_length
    for start in range(limit + 1):
        matched = 1
        for offset in range(pattern_length):
            phrase_char = to_lower(phrase[start + offset] & 255)
            pattern_char = to_lower(pattern[offset] & 255)
            if phrase_char != pattern_char:
                matched = 0
                break
        if matched == 1:
            return start
    return -1
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    found_count = 0
    position_sum = 0
    for phrase_index in range({phrase_count}):
        phrase_offset = phrase_index * {phrase_length}
        for pattern_index in range({pattern_count}):
            pattern_offset = pattern_index * {pattern_stride}
            length = pattern_lengths[pattern_index]
            position = find_pattern(
                phrases + phrase_offset, {phrase_length}, patterns + pattern_offset, length
            )
            if position >= 0:
                found_count += 1
                position_sum += position + phrase_index * 100
    output(found_count)
    output(position_sum)
    return found_count
'''


def _build_inputs() -> tuple:
    """Phrases with one pattern embedded in each, plus the flattened patterns."""
    phrases: List[int] = []
    for index, pattern in enumerate(PATTERNS):
        phrase = ascii_text(seed=300 + index, length=PHRASE_LENGTH)
        # Uppercase the embedded word for one phrase to exercise case folding.
        word = pattern.upper() if index == 1 else pattern
        phrase = embed_word(phrase, word, position=7 + 9 * index)
        phrases.extend(phrase)
    stride = max(len(p) for p in PATTERNS)
    flattened: List[int] = []
    lengths: List[int] = []
    for pattern in PATTERNS:
        padded = list(pattern.ljust(stride, "\0"))
        flattened.extend(ord(c) for c in padded)
        lengths.append(len(pattern))
    return phrases, flattened, lengths, stride


def build() -> CompiledProgram:
    """Compile the stringsearch workload over fixed phrases and patterns."""
    phrases, patterns, lengths, stride = _build_inputs()
    main_source = _MAIN_TEMPLATE.format(
        phrase_count=len(PATTERNS),
        pattern_count=len(PATTERNS),
        phrase_length=PHRASE_LENGTH,
        pattern_stride=stride,
    )
    return compile_program(
        "stringsearch",
        [_TO_LOWER, _SEARCH, main_source],
        {
            "phrases": ("i8", phrases),
            "patterns": ("i8", patterns),
            "pattern_lengths": ("i32", lengths),
        },
    )


DEFINITION = ProgramDefinition(
    name="stringsearch",
    suite="mibench",
    package="office",
    description="Case-insensitive search for words in phrases.",
    builder=build,
)
