"""qsort (MiBench / automotive).

Sorts a fixed pseudo-random list with a recursive quicksort (Hoare-style
partitioning around the middle element) and emits a position-weighted
checksum of the sorted data plus its extremes.  Heavy on comparisons,
swaps and recursion — a balanced mix of address and data manipulation.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import lcg_sequence

#: Number of elements sorted (MiBench sorts a word list; we sort integers).
ELEMENT_COUNT = 40

_QUICKSORT = '''
def quicksort(data: "i32*", low: "i64", high: "i64") -> None:
    """Recursive quicksort of data[low..high] (inclusive bounds)."""
    if low >= high:
        return
    pivot = data[(low + high) // 2]
    left = low
    right = high
    while left <= right:
        while data[left] < pivot:
            left += 1
        while data[right] > pivot:
            right -= 1
        if left <= right:
            temporary = data[left]
            data[left] = data[right]
            data[right] = temporary
            left += 1
            right -= 1
    quicksort(data, low, right)
    quicksort(data, left, high)
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    data = array("i32", {count})
    for index in range({count}):
        data[index] = values[index]
    quicksort(data, 0, {count} - 1)
    checksum = 0
    for index in range({count}):
        checksum += data[index] * (index + 1)
    output(checksum)
    output(data[0])
    output(data[{count} - 1])
    previous = data[0]
    inversions = 0
    for index in range(1, {count}):
        if data[index] < previous:
            inversions += 1
        previous = data[index]
    output(inversions)
    return checksum
'''


def build() -> CompiledProgram:
    """Compile the qsort workload over a fixed pseudo-random input list."""
    values = lcg_sequence(seed=42, count=ELEMENT_COUNT, modulus=10_000)
    return compile_program(
        "qsort",
        [_QUICKSORT, _MAIN_TEMPLATE.format(count=ELEMENT_COUNT)],
        {"values": ("i32", values)},
    )


DEFINITION = ProgramDefinition(
    name="qsort",
    suite="mibench",
    package="automotive",
    description="Quick Sort of a fixed pseudo-random list of integers.",
    builder=build,
)
