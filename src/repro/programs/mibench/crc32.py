"""CRC32 (MiBench / telecomm).

Computes the 32-bit Cyclic Redundancy Check of a pseudo sound-sample buffer
with the classic bit-at-a-time algorithm (reflected polynomial 0xEDB88320),
the same computation MiBench's ``crc32`` performs over a sound file.

Nearly every instruction manipulates *data* (the running CRC) rather than
addresses, so injected faults rarely raise hardware exceptions; the paper
singles out CRC32 (together with basicmath) as a program where the single
bit-flip model is *not* pessimistic because of exactly this profile.
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import sound_samples

#: Number of input bytes checksummed.
MESSAGE_BYTES = 40

_MAIN_TEMPLATE = '''
def main() -> "i64":
    crc = 4294967295
    for index in range({length}):
        byte = message[index] & 255
        crc = crc ^ byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 3988292384
            else:
                crc = crc >> 1
    crc = crc ^ 4294967295
    output(crc)
    byte_sum = 0
    for index in range({length}):
        byte_sum += message[index] & 255
    output(byte_sum)
    return crc
'''


def build() -> CompiledProgram:
    """Compile the CRC32 workload over a fixed pseudo sound-sample buffer."""
    samples = sound_samples(MESSAGE_BYTES, seed=77)
    message = [value & 0xFF for value in samples]
    return compile_program(
        "crc32",
        [_MAIN_TEMPLATE.format(length=MESSAGE_BYTES)],
        {"message": ("i32", message)},
    )


DEFINITION = ProgramDefinition(
    name="crc32",
    suite="mibench",
    package="telecomm",
    description="32-bit Cyclic Redundancy Check of a pseudo sound-sample buffer.",
    builder=build,
)
