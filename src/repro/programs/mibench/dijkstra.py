"""dijkstra (MiBench / network).

Single-source shortest paths over a dense adjacency-matrix graph using the
textbook O(n²) Dijkstra algorithm (repeatedly select the closest unvisited
node, relax its outgoing edges).  Dominated by array indexing over the
adjacency matrix — a large share of live registers hold addresses, which is
why faults in this workload are frequently caught by the memory-protection
hardware (high Detection, low SDC in the paper's Fig. 1).
"""

from __future__ import annotations

from repro.frontend.compiler import CompiledProgram, compile_program
from repro.programs.definition import ProgramDefinition
from repro.programs.inputs import adjacency_matrix

#: Number of graph nodes (MiBench uses a 100-node matrix; the algorithm and
#: its memory-access pattern are identical at this scale).
NODE_COUNT = 10
#: "Infinite" distance marker; well below i64 overflow when summed.
INFINITY = 1_000_000

_DIJKSTRA = '''
def shortest_paths(source: "i64", distance: "i32*", visited: "i32*") -> None:
    """Fill distance[] with shortest path costs from source."""
    nodes = {nodes}
    for node in range(nodes):
        distance[node] = {infinity}
        visited[node] = 0
    distance[source] = 0
    for _ in range(nodes):
        best_node = -1
        best_distance = {infinity} + 1
        for node in range(nodes):
            if visited[node] == 0 and distance[node] < best_distance:
                best_distance = distance[node]
                best_node = node
        if best_node < 0:
            return
        visited[best_node] = 1
        for node in range(nodes):
            weight = adjacency[best_node * nodes + node]
            if weight > 0:
                candidate = distance[best_node] + weight
                if candidate < distance[node]:
                    distance[node] = candidate
'''

_MAIN_TEMPLATE = '''
def main() -> "i64":
    nodes = {nodes}
    distance = array("i32", nodes)
    visited = array("i32", nodes)
    total = 0
    reachable = 0
    shortest_paths(0, distance, visited)
    for node in range(nodes):
        if distance[node] < {infinity}:
            total += distance[node]
            reachable += 1
    output(total)
    output(reachable)
    output(distance[nodes - 1])
    shortest_paths(nodes // 2, distance, visited)
    second_total = 0
    for node in range(nodes):
        if distance[node] < {infinity}:
            second_total += distance[node]
    output(second_total)
    return total + second_total
'''


def build() -> CompiledProgram:
    """Compile the dijkstra workload over a fixed connected weighted graph."""
    matrix = adjacency_matrix(NODE_COUNT, seed=1234)
    return compile_program(
        "dijkstra",
        [
            _DIJKSTRA.format(nodes=NODE_COUNT, infinity=INFINITY),
            _MAIN_TEMPLATE.format(nodes=NODE_COUNT, infinity=INFINITY),
        ],
        {"adjacency": ("i32", matrix)},
    )


DEFINITION = ProgramDefinition(
    name="dijkstra",
    suite="mibench",
    package="network",
    description=(
        "Dijkstra's shortest paths over an adjacency-matrix graph from two "
        "source nodes."
    ),
    builder=build,
)
