"""Program registry: lookup, building and caching of benchmark workloads.

The registry holds one :class:`~repro.programs.definition.ProgramDefinition`
per benchmark of Table II.  Compiled programs and their experiment runners
(golden traces included) are cached per process, because campaigns reuse the
same workload thousands of times.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.frontend.compiler import CompiledProgram
from repro.injection.experiment import ExperimentRunner
from repro.programs.definition import ProgramDefinition
from repro.vm.program import DecodedProgram, decode_module
from repro.programs.mibench import basicmath, crc32, dijkstra, fft, qsort, sha, stringsearch, susan
from repro.programs.parboil import bfs, histo, sad, spmv

#: All 15 benchmark programs, in the order Table II lists them.
_DEFINITIONS: List[ProgramDefinition] = [
    basicmath.DEFINITION,
    qsort.DEFINITION,
    susan.CORNERS_DEFINITION,
    susan.EDGES_DEFINITION,
    susan.SMOOTHING_DEFINITION,
    fft.FFT_DEFINITION,
    fft.IFFT_DEFINITION,
    crc32.DEFINITION,
    dijkstra.DEFINITION,
    sha.DEFINITION,
    stringsearch.DEFINITION,
    bfs.DEFINITION,
    histo.DEFINITION,
    sad.DEFINITION,
    spmv.DEFINITION,
]

REGISTRY: Dict[str, ProgramDefinition] = {
    definition.name: definition for definition in _DEFINITIONS
}


def get_program(name: str) -> ProgramDefinition:
    """Look up a program definition by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark program {name!r}; known programs: {sorted(REGISTRY)}"
        ) from None


def all_program_names() -> List[str]:
    """Names of all 15 benchmark programs, in Table II order."""
    return [definition.name for definition in _DEFINITIONS]


def mibench_program_names() -> List[str]:
    return [d.name for d in _DEFINITIONS if d.suite == "mibench"]


def parboil_program_names() -> List[str]:
    return [d.name for d in _DEFINITIONS if d.suite == "parboil"]


@lru_cache(maxsize=None)
def build_program(name: str) -> CompiledProgram:
    """Compile a benchmark to MiniIR (cached per process)."""
    return get_program(name).build()


@lru_cache(maxsize=None)
def get_decoded_program(name: str) -> DecodedProgram:
    """The decoded executable form of a benchmark (cached per process)."""
    return decode_module(build_program(name).module)


@lru_cache(maxsize=None)
def get_defuse_index(name: str):
    """The dynamic def-use index of a benchmark's golden run (cached).

    Built once per process from the cached experiment runner's golden trace;
    the error-space planner and the ``repro exhaustive`` mode share it.
    When a persistent artifact cache is active the columnar payload round-
    trips through it, so fresh processes (spawned workers, repeated CLI
    invocations) re-bind the stored index instead of replaying the trace.
    """
    from repro import artifacts
    from repro.errorspace.defuse import DefUseIndex, build_defuse_index

    runner = get_experiment_runner(name)
    disk = artifacts.active_cache()
    disk_key = None
    if disk is not None:
        disk_key = artifacts.defuse_key(
            disk, runner.program.module, runner.program.entry, runner.args
        )
        payload = disk.load("defuse", disk_key)
        if payload is not None:
            try:
                return DefUseIndex.from_payload(
                    runner.program, runner.golden, runner.decoded, payload
                )
            except Exception:
                pass  # corrupted artifact: rebuild below and overwrite
    index = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    if disk is not None and disk_key is not None:
        disk.store("defuse", disk_key, index.to_payload())
    return index


@lru_cache(maxsize=None)
def get_experiment_runner(
    name: str,
    fast_forward: bool = True,
    checkpoint_interval: "int | None" = None,
    backend: str = "decoded",
    windowed: bool = True,
) -> ExperimentRunner:
    """A ready-to-use experiment runner, cached per configuration.

    With ``fast_forward`` (the default) the runner's warm-up also captures
    the workload's VM checkpoints, cached alongside the golden trace — under
    a ``fork``-based pool, workers inherit all of it.  ``backend`` selects
    the execution engine faulty runs use (``decoded``, ``compiled`` or
    ``reference``); ``windowed`` (the default) arms injection hooks only
    inside the fault window of each faulty run.
    """
    return ExperimentRunner(
        build_program(name),
        fast_forward=fast_forward,
        checkpoint_interval=checkpoint_interval,
        backend=backend,
        windowed=windowed,
    )
