"""Deterministic input generators for the benchmark programs.

The paper uses MiBench's "small" inputs and Parboil's default/small inputs;
those files (sound samples, images, New-York road graphs, sparse matrices)
are not redistributable here, so each workload synthesises a structurally
similar input with a fixed linear congruential generator.  Determinism
matters twice over: the golden output must be stable across runs, and every
fault-injection campaign must target the exact same dynamic instruction
stream.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_LCG_MULTIPLIER = 1103515245
_LCG_INCREMENT = 12345
_LCG_MODULUS = 2**31


def lcg_sequence(seed: int, count: int, modulus: int) -> List[int]:
    """The classic C ``rand()`` LCG, reduced modulo ``modulus``."""
    values: List[int] = []
    state = seed & 0x7FFFFFFF
    for _ in range(count):
        state = (_LCG_MULTIPLIER * state + _LCG_INCREMENT) % _LCG_MODULUS
        values.append(state % modulus)
    return values


def rectangle_image(width: int, height: int, *, noise_seed: int = 7) -> List[int]:
    """A black & white image of a bright rectangle on a dark background.

    This mirrors the susan benchmarks' input ("a black & white image of a
    rectangle"); a little deterministic noise keeps the edge detector from
    producing degenerate all-zero gradients.
    """
    noise = lcg_sequence(noise_seed, width * height, 9)
    pixels: List[int] = []
    left, right = width // 4, (3 * width) // 4
    top, bottom = height // 4, (3 * height) // 4
    for row in range(height):
        for col in range(width):
            inside = left <= col < right and top <= row < bottom
            base = 190 if inside else 35
            pixels.append(base + noise[row * width + col])
    return pixels


def ascii_text(seed: int, length: int) -> List[int]:
    """Printable ASCII bytes (letters and spaces) for text workloads."""
    alphabet = "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    picks = lcg_sequence(seed, length, len(alphabet))
    return [ord(alphabet[p]) for p in picks]


def embed_word(text: List[int], word: str, position: int) -> List[int]:
    """Overwrite ``text`` with ``word`` starting at ``position``."""
    result = list(text)
    for offset, char in enumerate(word):
        result[position + offset] = ord(char)
    return result


def adjacency_matrix(nodes: int, seed: int, *, max_weight: int = 9, density_mod: int = 3) -> List[int]:
    """A connected directed weighted graph as a flattened adjacency matrix.

    Zero entries mean "no edge".  A ring backbone guarantees connectivity
    (dijkstra and bfs must reach every node in the golden run).
    """
    raw = lcg_sequence(seed, nodes * nodes, max_weight * density_mod)
    matrix = [0] * (nodes * nodes)
    for row in range(nodes):
        for col in range(nodes):
            if row == col:
                continue
            value = raw[row * nodes + col]
            if value % density_mod == 0:
                matrix[row * nodes + col] = 1 + value % max_weight
    for node in range(nodes):
        successor = (node + 1) % nodes
        if matrix[node * nodes + successor] == 0:
            matrix[node * nodes + successor] = 1 + node % max_weight
    return matrix


def edge_list_graph(nodes: int, seed: int, *, out_degree: int = 3) -> Tuple[List[int], List[int]]:
    """A CSR-style irregular graph: (offsets[nodes+1], edges[...]).

    Mirrors Parboil bfs's irregular uniform-edge-weight graph.
    """
    offsets: List[int] = [0]
    edges: List[int] = []
    picks = lcg_sequence(seed, nodes * out_degree, nodes)
    for node in range(nodes):
        targets = []
        ring_target = (node + 1) % nodes
        targets.append(ring_target)
        for k in range(out_degree - 1):
            candidate = picks[node * out_degree + k]
            if candidate != node and candidate not in targets:
                targets.append(candidate)
        edges.extend(sorted(targets))
        offsets.append(len(edges))
    return offsets, edges


def sparse_matrix_coo(
    rows: int, cols: int, nonzeros: int, seed: int
) -> Tuple[List[int], List[int], List[float]]:
    """A sparse matrix in coordinate (COO) format, like Parboil spmv's input."""
    row_picks = lcg_sequence(seed, nonzeros, rows)
    col_picks = lcg_sequence(seed + 1, nonzeros, cols)
    val_picks = lcg_sequence(seed + 2, nonzeros, 1000)
    seen = set()
    out_rows: List[int] = []
    out_cols: List[int] = []
    out_vals: List[float] = []
    for r, c, v in zip(row_picks, col_picks, val_picks):
        if (r, c) in seen:
            continue
        seen.add((r, c))
        out_rows.append(r)
        out_cols.append(c)
        out_vals.append(0.25 + v / 250.0)
    # Guarantee a nonzero on every row so y has no trivially-zero entries.
    covered = set(out_rows)
    for row in range(rows):
        if row not in covered:
            out_rows.append(row)
            out_cols.append(row % cols)
            out_vals.append(1.0 + row / 10.0)
    return out_rows, out_cols, out_vals


def dense_vector(length: int, seed: int) -> List[float]:
    """A dense f64 vector with entries in [0.1, 2.1)."""
    return [0.1 + v / 500.0 for v in lcg_sequence(seed, length, 1000)]


def sound_samples(length: int, seed: int) -> List[int]:
    """Pseudo sound samples (16-bit signed range) for CRC32 / FFT inputs."""
    raw = lcg_sequence(seed, length, 65536)
    return [value - 32768 for value in raw]


def block_image_pair(width: int, height: int, seed: int) -> Tuple[List[int], List[int]]:
    """A (current, reference) frame pair for the sad benchmark.

    The reference frame is the current frame shifted by one pixel with a bit
    of noise, giving the motion-estimation search a realistic minimum.
    """
    current = rectangle_image(width, height, noise_seed=seed)
    noise = lcg_sequence(seed + 13, width * height, 5)
    reference: List[int] = []
    for row in range(height):
        for col in range(width):
            source_col = min(width - 1, col + 1)
            reference.append(current[row * width + source_col] + noise[row * width + col] - 2)
    return current, reference
