"""The :class:`ProgramDefinition` record describing one benchmark program."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.frontend.compiler import CompiledProgram


@dataclass(frozen=True)
class ProgramDefinition:
    """Metadata plus a builder for one benchmark workload.

    Mirrors one row of the paper's Table II: the program name, its benchmark
    suite (MiBench or Parboil), the suite package it comes from, and a short
    description of what it computes on which input.
    """

    name: str
    suite: str
    package: str
    description: str
    builder: Callable[[], CompiledProgram]

    def build(self) -> CompiledProgram:
        """Compile the program to MiniIR (deterministic; no caching here)."""
        return self.builder()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProgramDefinition {self.name} ({self.suite}/{self.package})>"
