"""Benchmark programs: the 15 MiBench / Parboil workloads of Table II.

Each program is a faithful, scaled-down re-implementation of the benchmark
the paper injects faults into, written in the restricted-Python frontend
language and compiled to MiniIR.  Inputs are deterministic and small (the
paper itself uses MiBench's "small" inputs) so a fault-free run takes
thousands rather than millions of dynamic instructions; what matters for the
reproduction is each program's characteristic mix of address and data
computation, which drives the detection/SDC split the paper analyses.

Use :mod:`repro.programs.registry` to enumerate and build programs::

    from repro.programs import registry
    runner = registry.get_experiment_runner("crc32")
"""

from repro.programs.definition import ProgramDefinition
from repro.programs.registry import (
    all_program_names,
    build_program,
    get_experiment_runner,
    get_program,
    mibench_program_names,
    parboil_program_names,
)

__all__ = [
    "ProgramDefinition",
    "all_program_names",
    "build_program",
    "get_experiment_runner",
    "get_program",
    "mibench_program_names",
    "parboil_program_names",
]
