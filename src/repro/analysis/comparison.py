"""RQ2–RQ4: single vs multiple bit-flip SDC comparison.

These analyses sit behind Figs. 2, 4 and 5 and Table III of the paper:

* :func:`sdc_percentage_by_cluster` — SDC % per (max-MBF, win-size) cluster
  of one program/technique, the series the figures plot;
* :func:`single_bit_is_pessimistic` — RQ2: is the single bit-flip SDC %
  an upper bound (within a tolerance) on every multi-bit cluster's SDC %?
* :func:`single_bit_pessimistic_fraction` — the headline "92 % of campaigns"
  aggregation across the whole store;
* :func:`highest_sdc_configurations` — Table III: the (max-MBF, win-size)
  configuration with the highest SDC % per program/technique;
* :func:`max_mbf_needed_for_peak_sdc` — RQ3: the number of errors needed to
  reach the peak SDC % for each program/win-size pair;
* :func:`win_size_sensitivity` — RQ4: how much the win-size parameter moves
  the SDC % at a fixed max-MBF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign.results import CampaignResult, ResultStore
from repro.errors import AnalysisError

#: A campaign whose SDC % exceeds the single-bit SDC % by less than this many
#: percentage points is still counted as "covered" by the single-bit model,
#: following the paper's reading of "higher than or almost the same as (i.e.,
#: difference less than one percentage point)".
DEFAULT_TOLERANCE_PP = 1.0


def _sdc_pct(result: CampaignResult) -> float:
    return result.sdc_percentage


def sdc_percentage_by_cluster(
    store: ResultStore,
    program: str,
    technique: str,
    *,
    same_register: Optional[bool] = None,
    include_single_bit: bool = True,
) -> Dict[Tuple[int, str], float]:
    """SDC % keyed by (max-MBF, win-size label) for one program/technique."""
    series: Dict[Tuple[int, str], float] = {}
    if include_single_bit:
        try:
            single = store.single_bit(program, technique)
            series[(1, "single")] = _sdc_pct(single)
        except AnalysisError:
            pass
    for result in store.multi_bit(program, technique, same_register=same_register):
        key = (result.config.max_mbf, result.config.win_size.label)
        series[key] = _sdc_pct(result)
    if not series:
        raise AnalysisError(f"no campaigns for {program}/{technique} in the store")
    return series


def single_bit_is_pessimistic(
    store: ResultStore,
    program: str,
    technique: str,
    *,
    tolerance_pp: float = DEFAULT_TOLERANCE_PP,
    same_register: Optional[bool] = None,
) -> bool:
    """RQ2 for one program/technique: is the single-bit SDC % an upper bound?"""
    single = store.single_bit(program, technique)
    multi = store.multi_bit(program, technique, same_register=same_register)
    if not multi:
        raise AnalysisError(f"no multi-bit campaigns for {program}/{technique}")
    single_pct = _sdc_pct(single)
    return all(_sdc_pct(result) <= single_pct + tolerance_pp for result in multi)


def single_bit_pessimistic_fraction(
    store: ResultStore,
    *,
    tolerance_pp: float = DEFAULT_TOLERANCE_PP,
) -> float:
    """Fraction of multi-bit campaigns whose SDC % the single-bit model covers.

    This is the aggregation behind the paper's "the single bit-flip model
    mostly (92 % of all campaigns) results in pessimistic percentage of SDCs".
    """
    covered = 0
    total = 0
    for result in store:
        if result.config.is_single_bit:
            continue
        try:
            single = store.single_bit(result.config.program, result.config.technique)
        except AnalysisError:
            continue
        total += 1
        if _sdc_pct(result) <= _sdc_pct(single) + tolerance_pp:
            covered += 1
    if total == 0:
        raise AnalysisError("store contains no multi-bit campaigns with single-bit baselines")
    return covered / total


@dataclass(frozen=True)
class HighestSdcConfiguration:
    """One Table III row: the multi-bit configuration with the peak SDC %."""

    program: str
    technique: str
    max_mbf: int
    win_size_label: str
    sdc_percentage: float
    single_bit_sdc_percentage: float

    @property
    def exceeds_single_bit(self) -> bool:
        return self.sdc_percentage > self.single_bit_sdc_percentage

    @property
    def margin_over_single_bit_pp(self) -> float:
        return self.sdc_percentage - self.single_bit_sdc_percentage


def highest_sdc_configurations(
    store: ResultStore,
    *,
    programs: Optional[Iterable[str]] = None,
    techniques: Iterable[str] = ("inject-on-read", "inject-on-write"),
    same_register: Optional[bool] = False,
) -> List[HighestSdcConfiguration]:
    """Table III: per program/technique, the multi-bit campaign with max SDC %.

    The paper's Table III considers multi-register campaigns (win-size > 0),
    which is the default here (``same_register=False``); pass ``None`` to
    consider every multi-bit campaign.
    """
    selected_programs = list(programs) if programs is not None else store.programs()
    rows: List[HighestSdcConfiguration] = []
    for program in selected_programs:
        for technique in techniques:
            multi = store.multi_bit(program, technique, same_register=same_register)
            if not multi:
                continue
            best = max(multi, key=_sdc_pct)
            try:
                single_pct = _sdc_pct(store.single_bit(program, technique))
            except AnalysisError:
                single_pct = float("nan")
            rows.append(
                HighestSdcConfiguration(
                    program=program,
                    technique=technique,
                    max_mbf=best.config.max_mbf,
                    win_size_label=best.config.win_size.label,
                    sdc_percentage=_sdc_pct(best),
                    single_bit_sdc_percentage=single_pct,
                )
            )
    if not rows:
        raise AnalysisError("store contains no multi-bit campaigns to rank")
    return rows


def max_mbf_needed_for_peak_sdc(
    store: ResultStore,
    technique: str,
    *,
    programs: Optional[Iterable[str]] = None,
) -> Dict[Tuple[str, str], int]:
    """RQ3: per (program, win-size label), the max-MBF that peaks the SDC %.

    The paper reports that 2 errors suffice under inject-on-read and 3 under
    inject-on-write for ~95 % of program/win-size pairs.
    """
    selected_programs = list(programs) if programs is not None else store.programs()
    peaks: Dict[Tuple[str, str], Tuple[int, float]] = {}
    for program in selected_programs:
        for result in store.multi_bit(program, technique, same_register=False):
            key = (program, result.config.win_size.label)
            candidate = (result.config.max_mbf, _sdc_pct(result))
            incumbent = peaks.get(key)
            if incumbent is None or candidate[1] > incumbent[1] or (
                candidate[1] == incumbent[1] and candidate[0] < incumbent[0]
            ):
                peaks[key] = candidate
    if not peaks:
        raise AnalysisError(f"no multi-register campaigns for technique {technique!r}")
    return {key: max_mbf for key, (max_mbf, _) in peaks.items()}


def fraction_of_pairs_peaking_within(
    store: ResultStore, technique: str, bound: int, **kwargs
) -> float:
    """Fraction of (program, win-size) pairs whose SDC peak needs ≤ ``bound`` errors."""
    peaks = max_mbf_needed_for_peak_sdc(store, technique, **kwargs)
    within = sum(1 for max_mbf in peaks.values() if max_mbf <= bound)
    return within / len(peaks)


def win_size_sensitivity(
    store: ResultStore,
    program: str,
    technique: str,
    *,
    max_mbf: Optional[int] = None,
) -> float:
    """RQ4: spread (max − min, in pp) of SDC % across win-size values.

    When ``max_mbf`` is None the spread is computed per max-MBF value and the
    largest spread is returned — "does any window choice matter anywhere?".
    """
    multi = store.multi_bit(program, technique, same_register=False)
    if not multi:
        raise AnalysisError(f"no multi-register campaigns for {program}/{technique}")
    by_mbf: Dict[int, List[float]] = {}
    for result in multi:
        if max_mbf is not None and result.config.max_mbf != max_mbf:
            continue
        by_mbf.setdefault(result.config.max_mbf, []).append(_sdc_pct(result))
    if not by_mbf:
        raise AnalysisError(f"no campaigns with max-MBF={max_mbf} for {program}/{technique}")
    return max(max(values) - min(values) for values in by_mbf.values() if values)
