"""Analysis layer: the paper's research questions and pruning techniques.

Modules map onto the paper's evaluation structure:

* :mod:`repro.analysis.statistics` — proportions, 95 % confidence intervals
  and significance tests (re-exported from :mod:`repro.stats`);
* :mod:`repro.analysis.activation` — RQ1: how many injected errors are
  activated before the program crashes (Fig. 3);
* :mod:`repro.analysis.comparison` — RQ2–RQ4: single vs multiple bit-flip
  SDC percentages, max-MBF upper bounds and win-size sensitivity
  (Figs. 2, 4, 5 and Table III);
* :mod:`repro.analysis.transitions` — RQ5: outcome transitions when the
  first error of a multi-bit experiment is pinned to a single-bit location
  (Fig. 6, Table IV);
* :mod:`repro.analysis.pruning` — the three error-space pruning layers;
* :mod:`repro.analysis.reporting` — plain-text rendering of every table and
  figure series for the benchmark harness and examples.
"""

from repro.analysis.activation import ActivationDistribution, activation_distribution
from repro.analysis.comparison import (
    HighestSdcConfiguration,
    highest_sdc_configurations,
    max_mbf_needed_for_peak_sdc,
    sdc_percentage_by_cluster,
    single_bit_is_pessimistic,
    single_bit_pessimistic_fraction,
    win_size_sensitivity,
)
from repro.analysis.pruning import (
    PruningSummary,
    prunable_first_location_fraction,
    pruning_summary,
    recommended_max_mbf_bound,
)
from repro.analysis.transitions import (
    TRANSITIONS,
    TransitionStudyResult,
    transition_study,
)

__all__ = [
    "ActivationDistribution",
    "activation_distribution",
    "HighestSdcConfiguration",
    "highest_sdc_configurations",
    "max_mbf_needed_for_peak_sdc",
    "prunable_first_location_fraction",
    "PruningSummary",
    "pruning_summary",
    "recommended_max_mbf_bound",
    "sdc_percentage_by_cluster",
    "single_bit_is_pessimistic",
    "single_bit_pessimistic_fraction",
    "TRANSITIONS",
    "transition_study",
    "TransitionStudyResult",
    "win_size_sensitivity",
]
