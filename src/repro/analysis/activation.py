"""RQ1: how many injected errors are *activated* before the program crashes?

The paper injects with max-MBF = 30 and measures how many of the planned 30
flips were actually performed before the run ended (Fig. 3).  The resulting
distribution justifies the first error-space pruning layer: because almost
all experiments activate far fewer than 30 errors, larger max-MBF values add
no information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign.results import CampaignResult, ResultStore
from repro.errors import AnalysisError

#: The buckets Fig. 3 reports: 1–5, 6–10 and more than 10 activated errors.
FIGURE3_BUCKETS: Tuple[Tuple[int, int], ...] = ((1, 5), (6, 10), (11, 10**9))


@dataclass
class ActivationDistribution:
    """Distribution of the number of activated errors across experiments."""

    technique: str
    #: Histogram: activated error count -> number of experiments.
    histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def total_experiments(self) -> int:
        return sum(self.histogram.values())

    def merge_histogram(self, histogram: Dict[int, int]) -> None:
        for activated, count in histogram.items():
            self.histogram[activated] = self.histogram.get(activated, 0) + count

    def fraction_at_most(self, limit: int) -> float:
        """Fraction of experiments that activated at most ``limit`` errors."""
        total = self.total_experiments
        if total == 0:
            return 0.0
        covered = sum(count for activated, count in self.histogram.items() if activated <= limit)
        return covered / total

    def fraction_in_range(self, low: int, high: int) -> float:
        total = self.total_experiments
        if total == 0:
            return 0.0
        covered = sum(
            count for activated, count in self.histogram.items() if low <= activated <= high
        )
        return covered / total

    def bucket_percentages(
        self, buckets: Tuple[Tuple[int, int], ...] = FIGURE3_BUCKETS
    ) -> Dict[str, float]:
        """Fig. 3's bucketed view, as percentages keyed by a readable label."""
        result: Dict[str, float] = {}
        for low, high in buckets:
            label = f"{low}-{high}" if high < 10**9 else f">{low - 1}"
            result[label] = 100.0 * self.fraction_in_range(low, high)
        return result

    def mean_activated(self) -> float:
        total = self.total_experiments
        if total == 0:
            return 0.0
        return sum(activated * count for activated, count in self.histogram.items()) / total

    def smallest_bound_covering(self, coverage: float) -> int:
        """Smallest activated-error count whose CDF reaches ``coverage``."""
        if not 0.0 < coverage <= 1.0:
            raise AnalysisError("coverage must be in (0, 1]")
        if not self.histogram:
            raise AnalysisError("activation distribution is empty")
        for bound in sorted(self.histogram):
            if self.fraction_at_most(bound) >= coverage:
                return bound
        return max(self.histogram)


def activation_distribution(
    store: ResultStore,
    technique: str,
    *,
    max_mbf: int = 30,
    programs: Optional[Iterable[str]] = None,
) -> ActivationDistribution:
    """Aggregate the activated-error histograms of max-MBF=30 campaigns.

    Matches Fig. 3's setup: every win-size value of Table I is included, and
    results are aggregated across the selected programs for one technique.
    """
    wanted_programs = set(programs) if programs is not None else None
    distribution = ActivationDistribution(technique=technique)
    matched = 0
    for result in store.for_technique(technique):
        if result.config.max_mbf != max_mbf:
            continue
        if wanted_programs is not None and result.config.program not in wanted_programs:
            continue
        distribution.merge_histogram(result.activated_histogram)
        matched += 1
    if matched == 0:
        raise AnalysisError(
            f"no campaigns with max-MBF={max_mbf} and technique {technique!r} in the store"
        )
    return distribution


def activation_summary_rows(
    store: ResultStore, *, max_mbf: int = 30
) -> List[Dict[str, object]]:
    """One row per technique with Fig. 3's bucket percentages."""
    rows: List[Dict[str, object]] = []
    for technique in ("inject-on-read", "inject-on-write"):
        try:
            distribution = activation_distribution(store, technique, max_mbf=max_mbf)
        except AnalysisError:
            continue
        row: Dict[str, object] = {"technique": technique}
        row.update(distribution.bucket_percentages())
        row["mean"] = distribution.mean_activated()
        rows.append(row)
    return rows
