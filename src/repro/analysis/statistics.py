"""Statistical helpers used by the analyses (thin facade over :mod:`repro.stats`).

The campaign layer must not depend on the analysis package (to keep imports
acyclic), so the actual implementations live in the top-level
:mod:`repro.stats` module; this facade re-exports them under the name the
analysis code and the paper's terminology suggest, and adds the couple of
helpers that only make sense at the analysis level.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.campaign.results import CampaignResult
from repro.stats import (
    ProportionEstimate,
    Z_95,
    normal_proportion_interval,
    percentage_point_difference,
    proportion_difference_significant,
    wilson_proportion_interval,
)

__all__ = [
    "ProportionEstimate",
    "Z_95",
    "normal_proportion_interval",
    "percentage_point_difference",
    "proportion_difference_significant",
    "wilson_proportion_interval",
    "sdc_difference_percentage_points",
    "sdc_difference_is_significant",
    "summarize_sdc",
]


def summarize_sdc(result: CampaignResult) -> Dict[str, float]:
    """SDC percentage with its 95 % confidence half-width for one campaign."""
    estimate = result.sdc_estimate()
    return {
        "sdc_percentage": estimate.percentage,
        "ci_half_width": 100.0 * estimate.half_width,
        "experiments": float(estimate.trials),
    }


def sdc_difference_percentage_points(a: CampaignResult, b: CampaignResult) -> float:
    """SDC percentage of campaign ``a`` minus that of campaign ``b`` (pp)."""
    from repro.injection.outcome import Outcome

    return percentage_point_difference(
        a.outcome_counts.count(Outcome.SDC),
        a.outcome_counts.total,
        b.outcome_counts.count(Outcome.SDC),
        b.outcome_counts.total,
    )


def sdc_difference_is_significant(a: CampaignResult, b: CampaignResult) -> bool:
    """Whether two campaigns' SDC rates differ at the 95 % level."""
    from repro.injection.outcome import Outcome

    return proportion_difference_significant(
        a.outcome_counts.count(Outcome.SDC),
        a.outcome_counts.total,
        b.outcome_counts.count(Outcome.SDC),
        b.outcome_counts.total,
    )
