"""Plain-text rendering of the paper's tables and figure series.

Every figure in the paper is a bar chart over programs/configurations; the
benchmark harness regenerates the *numbers* behind those bars and renders
them as aligned text tables so a terminal diff against EXPERIMENTS.md is
possible.  The functions here are deliberately free of any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.activation import activation_summary_rows
from repro.analysis.comparison import highest_sdc_configurations, sdc_percentage_by_cluster
from repro.analysis.transitions import TransitionStudyResult
from repro.campaign.results import ResultStore
from repro.errors import AnalysisError
from repro.injection.outcome import Outcome


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        " | ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append(" | ".join(value.ljust(widths[index]) for index, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# --------------------------------------------------------------------------- Fig. 1
def figure1_rows(store: ResultStore, technique: str) -> List[List[object]]:
    """Per-program outcome breakdown for the single bit-flip model."""
    rows: List[List[object]] = []
    for program in store.programs():
        try:
            result = store.single_bit(program, technique)
        except AnalysisError:
            continue
        rows.append(
            [
                program,
                result.benign_percentage,
                result.outcome_percentage(Outcome.DETECTED_HW_EXCEPTION),
                result.outcome_percentage(Outcome.HANG),
                result.outcome_percentage(Outcome.NO_OUTPUT),
                result.detection_percentage,
                result.sdc_percentage,
                100.0 * result.sdc_estimate().half_width,
            ]
        )
    return rows


def format_figure1(store: ResultStore, technique: str) -> str:
    headers = [
        "program",
        "benign%",
        "hw-exception%",
        "hang%",
        "no-output%",
        "detection%",
        "SDC%",
        "CI±",
    ]
    return format_table(headers, figure1_rows(store, technique))


# --------------------------------------------------------------------------- Figs. 2/4/5
def sdc_series_rows(
    store: ResultStore,
    technique: str,
    *,
    same_register: Optional[bool],
    programs: Optional[Iterable[str]] = None,
) -> List[List[object]]:
    """One row per program: SDC % for the single-bit model and each max-MBF."""
    selected = list(programs) if programs is not None else store.programs()
    rows: List[List[object]] = []
    for program in selected:
        try:
            series = sdc_percentage_by_cluster(
                store, program, technique, same_register=same_register
            )
        except AnalysisError:
            continue
        single = series.get((1, "single"), float("nan"))
        multi_by_mbf: Dict[int, List[float]] = {}
        for (max_mbf, _label), value in series.items():
            if max_mbf == 1:
                continue
            multi_by_mbf.setdefault(max_mbf, []).append(value)
        row: List[object] = [program, single]
        for max_mbf in sorted(multi_by_mbf):
            row.append(max(multi_by_mbf[max_mbf]))
        rows.append(row)
    return rows


def format_sdc_series(
    store: ResultStore,
    technique: str,
    *,
    same_register: Optional[bool],
    programs: Optional[Iterable[str]] = None,
) -> str:
    rows = sdc_series_rows(store, technique, same_register=same_register, programs=programs)
    mbf_count = max((len(row) - 2 for row in rows), default=0)
    headers = ["program", "single-bit SDC%"] + [f"mbf#{i}" for i in range(1, mbf_count + 1)]
    return format_table(headers, rows)


# --------------------------------------------------------------------------- Fig. 3
def format_figure3(store: ResultStore, *, max_mbf: int = 30) -> str:
    rows = activation_summary_rows(store, max_mbf=max_mbf)
    if not rows:
        return "(no max-MBF=30 campaigns in the store)"
    headers = ["technique"] + [key for key in rows[0] if key != "technique"]
    table_rows = [[row[header] for header in headers] for row in rows]
    return format_table(headers, table_rows)


# --------------------------------------------------------------------------- Table III
def format_table3(store: ResultStore, **kwargs) -> str:
    rows = [
        [
            row.program,
            row.technique,
            row.max_mbf,
            row.win_size_label,
            row.sdc_percentage,
            row.single_bit_sdc_percentage,
            "yes" if row.exceeds_single_bit else "no",
        ]
        for row in highest_sdc_configurations(store, **kwargs)
    ]
    headers = [
        "program",
        "technique",
        "max-MBF",
        "win-size",
        "peak SDC%",
        "single-bit SDC%",
        "exceeds single?",
    ]
    return format_table(headers, rows)


# --------------------------------------------------------------------------- Table IV
def format_table4(results: Sequence[TransitionStudyResult]) -> str:
    rows = [
        [
            result.program,
            result.technique,
            100.0 * result.transition1_likelihood,
            100.0 * result.transition2_likelihood,
            result.detection_locations,
            result.benign_locations,
        ]
        for result in results
    ]
    headers = [
        "program",
        "technique",
        "Tran. I %",
        "Tran. II %",
        "detection locations",
        "benign locations",
    ]
    return format_table(headers, rows)
