"""RQ5: sensitivity of fault-injection locations to multiple bit-flip errors.

The paper's Fig. 6 describes outcome *transitions*: starting a multi-bit
experiment at the same program location as a single-bit experiment, does the
outcome change?  Two transitions decrease resilience and therefore matter
for pruning:

* **Transition I** (``t_{d-s}``): the single-bit outcome was a Detection,
  but multi-bit injection at the same starting location yields an SDC;
* **Transition II** (``t_{b-s}``): the single-bit outcome was Benign, but
  multi-bit injection at the same starting location yields an SDC.

Table IV reports the likelihood of both transitions per program and
technique using the worst-case (Table III) multi-bit configuration.  Because
Transition I is rare, multi-bit campaigns can skip every location whose
single-bit outcome was a Detection (or already an SDC) and only start from
Benign locations — the third pruning layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.results import CampaignResult, ExperimentRecord, ResultStore
from repro.errors import AnalysisError
from repro.injection.experiment import ExperimentRunner
from repro.injection.outcome import DETECTION_OUTCOMES, Outcome
from repro.injection.techniques import InjectionCandidate, technique_by_name


@dataclass(frozen=True)
class TransitionLabel:
    """One edge of the Fig. 6 state diagram."""

    name: str
    source: Outcome
    target: Outcome
    decreases_resilience: bool


#: The transitions Fig. 6 draws (self-loops plus the resilience-decreasing ones).
TRANSITIONS: Tuple[TransitionLabel, ...] = (
    TransitionLabel("t_s", Outcome.SDC, Outcome.SDC, False),
    TransitionLabel("t_b", Outcome.BENIGN, Outcome.BENIGN, False),
    TransitionLabel("t_d", Outcome.DETECTED_HW_EXCEPTION, Outcome.DETECTED_HW_EXCEPTION, False),
    TransitionLabel("t_d-s (Transition I)", Outcome.DETECTED_HW_EXCEPTION, Outcome.SDC, True),
    TransitionLabel("t_b-s (Transition II)", Outcome.BENIGN, Outcome.SDC, True),
    TransitionLabel("t_b-d", Outcome.BENIGN, Outcome.DETECTED_HW_EXCEPTION, False),
    TransitionLabel("t_d-b", Outcome.DETECTED_HW_EXCEPTION, Outcome.BENIGN, False),
    TransitionLabel("t_s-b", Outcome.SDC, Outcome.BENIGN, False),
    TransitionLabel("t_s-d", Outcome.SDC, Outcome.DETECTED_HW_EXCEPTION, False),
)


@dataclass
class TransitionStudyResult:
    """One Table IV row: transition likelihoods for a program/technique pair."""

    program: str
    technique: str
    max_mbf: int
    win_size: int
    #: Locations replayed and how many of them transitioned to SDC.
    detection_locations: int
    detection_to_sdc: int
    benign_locations: int
    benign_to_sdc: int

    @property
    def transition1_likelihood(self) -> float:
        """P(Detection -> SDC) — Table IV's "Tran. I" column (0..1)."""
        if self.detection_locations == 0:
            return 0.0
        return self.detection_to_sdc / self.detection_locations

    @property
    def transition2_likelihood(self) -> float:
        """P(Benign -> SDC) — Table IV's "Tran. II" column (0..1)."""
        if self.benign_locations == 0:
            return 0.0
        return self.benign_to_sdc / self.benign_locations


def _records_by_outcome(
    single_bit: CampaignResult,
) -> Tuple[List[ExperimentRecord], List[ExperimentRecord]]:
    """Split single-bit experiment records into Detection and Benign sets."""
    detection: List[ExperimentRecord] = []
    benign: List[ExperimentRecord] = []
    for record in single_bit.records:
        if record.outcome in DETECTION_OUTCOMES:
            detection.append(record)
        elif record.outcome is Outcome.BENIGN:
            benign.append(record)
    return detection, benign


def _replay_locations(
    runner: ExperimentRunner,
    technique_name: str,
    records: Sequence[ExperimentRecord],
    *,
    max_mbf: int,
    win_size: int,
    rng: random.Random,
    limit: Optional[int],
) -> Tuple[int, int]:
    """Re-run multi-bit experiments pinned to each record's first location."""
    technique = technique_by_name(technique_name)
    chosen = list(records)
    if limit is not None and len(chosen) > limit:
        chosen = rng.sample(chosen, limit)
    sdc_count = 0
    for record in chosen:
        candidate = InjectionCandidate(
            dynamic_index=record.first_dynamic_index,
            slot=record.first_slot,
            register_bits=0,
            opcode="",
        )
        result = runner.run_sampled(
            technique,
            max_mbf=max_mbf,
            win_size=win_size,
            rng=rng,
            first_candidate=candidate,
        )
        if result.outcome is Outcome.SDC:
            sdc_count += 1
    return len(chosen), sdc_count


def transition_study(
    store: ResultStore,
    runner: ExperimentRunner,
    program: str,
    technique: str,
    *,
    max_mbf: Optional[int] = None,
    win_size: Optional[int] = None,
    locations_per_class: Optional[int] = 60,
    seed: int = 2017,
) -> TransitionStudyResult:
    """Measure Transition I and Transition II likelihoods for one workload.

    The single-bit campaign in ``store`` supplies the starting locations and
    their single-bit outcomes; the worst-case multi-bit configuration (the
    Table III argmax, unless ``max_mbf``/``win_size`` are given) is replayed
    from each location.  ``locations_per_class`` bounds the number of replays
    per outcome class (the paper replays all 10,000; at reproduction scale a
    sample keeps the study fast while preserving the contrast between the
    two transition likelihoods).
    """
    single_bit = store.single_bit(program, technique)
    if not single_bit.records:
        raise AnalysisError(
            f"single-bit campaign for {program}/{technique} kept no per-experiment records"
        )
    if max_mbf is None or win_size is None:
        multi = store.multi_bit(program, technique, same_register=False)
        if not multi:
            raise AnalysisError(
                f"no multi-register campaigns for {program}/{technique}; "
                "run them first or pass max_mbf/win_size explicitly"
            )
        best = max(multi, key=lambda result: result.sdc_percentage)
        max_mbf = best.config.max_mbf if max_mbf is None else max_mbf
        win_size = best.resolved_win_size if win_size is None else win_size

    detection_records, benign_records = _records_by_outcome(single_bit)
    rng = random.Random(seed)
    detection_total, detection_sdc = _replay_locations(
        runner,
        technique,
        detection_records,
        max_mbf=max_mbf,
        win_size=win_size,
        rng=rng,
        limit=locations_per_class,
    )
    benign_total, benign_sdc = _replay_locations(
        runner,
        technique,
        benign_records,
        max_mbf=max_mbf,
        win_size=win_size,
        rng=rng,
        limit=locations_per_class,
    )
    return TransitionStudyResult(
        program=program,
        technique=technique,
        max_mbf=max_mbf,
        win_size=win_size,
        detection_locations=detection_total,
        detection_to_sdc=detection_sdc,
        benign_locations=benign_total,
        benign_to_sdc=benign_sdc,
    )
