"""The three error-space pruning layers the paper derives from its results.

1. **Bound max-MBF** (§IV-C1): the activated-error distribution shows that
   runs with 30 planned flips rarely activate more than 10 before crashing,
   so max-MBF beyond ~10 adds nothing — :func:`recommended_max_mbf_bound`.
2. **Pessimistic parameter selection** (§IV-B / §IV-C2): for programs where
   the single bit-flip model is already pessimistic, multi-bit campaigns can
   be replaced by the single-bit one; where it is not, a small max-MBF (2–3)
   with a small window suffices — :func:`single_bit_sufficient_programs`,
   :func:`pessimistic_cluster_bound`.
3. **Location pruning** (§IV-C3): multi-bit experiments only need to start
   from locations whose single-bit outcome was Benign, because Detection
   locations almost never transition to SDC (Transition I is rare) —
   :func:`prunable_first_location_fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.activation import activation_distribution
from repro.analysis.comparison import (
    max_mbf_needed_for_peak_sdc,
    single_bit_is_pessimistic,
)
from repro.campaign.results import ResultStore
from repro.errors import AnalysisError
from repro.injection.outcome import DETECTION_OUTCOMES, Outcome


# --------------------------------------------------------------------------- layer 1
def recommended_max_mbf_bound(
    store: ResultStore,
    technique: str,
    *,
    coverage: float = 0.95,
    probe_max_mbf: int = 30,
) -> int:
    """Layer 1: smallest max-MBF covering ``coverage`` of activated-error counts.

    The paper finds ~99 % of inject-on-read and ~92 % of inject-on-write
    experiments activate fewer than 10 errors, making 10 a sufficient upper
    bound for max-MBF.
    """
    distribution = activation_distribution(store, technique, max_mbf=probe_max_mbf)
    return distribution.smallest_bound_covering(coverage)


# --------------------------------------------------------------------------- layer 2
def single_bit_sufficient_programs(
    store: ResultStore,
    technique: str,
    *,
    tolerance_pp: float = 1.0,
    programs: Optional[Iterable[str]] = None,
) -> List[str]:
    """Layer 2a: programs whose multi-bit campaigns the single-bit model covers.

    For these programs multi-bit fault injection can be skipped entirely when
    one only needs a conservative SDC estimate.
    """
    selected = list(programs) if programs is not None else store.programs()
    sufficient: List[str] = []
    for program in selected:
        try:
            if single_bit_is_pessimistic(store, program, technique, tolerance_pp=tolerance_pp):
                sufficient.append(program)
        except AnalysisError:
            continue
    return sufficient


def pessimistic_cluster_bound(
    store: ResultStore,
    technique: str,
    *,
    quantile: float = 0.95,
    programs: Optional[Iterable[str]] = None,
) -> int:
    """Layer 2b: the max-MBF value that reaches the SDC peak for ``quantile``
    of program/win-size pairs.

    The paper's answer is 2 for inject-on-read and 3 for inject-on-write —
    multi-bit campaigns beyond that max-MBF can be pruned.
    """
    if not 0.0 < quantile <= 1.0:
        raise AnalysisError("quantile must be in (0, 1]")
    peaks = max_mbf_needed_for_peak_sdc(store, technique, programs=programs)
    ordered = sorted(peaks.values())
    index = min(len(ordered) - 1, max(0, int(quantile * len(ordered)) - 1))
    return ordered[index]


# --------------------------------------------------------------------------- layer 3
def prunable_first_location_fraction(
    store: ResultStore, program: str, technique: str
) -> float:
    """Layer 3: fraction of single-bit experiments whose location can be skipped.

    Locations whose single-bit outcome was an SDC or a Detection need not be
    used as the first location of multi-bit experiments (they cannot *add*
    SDCs beyond what the single-bit campaign already found, and Detection
    locations rarely transition to SDC).  The paper reports this covers
    roughly 50–100 % of inject-on-read and 27–100 % of inject-on-write
    experiments.
    """
    single_bit = store.single_bit(program, technique)
    counts = single_bit.outcome_counts
    if counts.total == 0:
        raise AnalysisError(f"single-bit campaign for {program}/{technique} is empty")
    prunable = counts.count(Outcome.SDC) + sum(
        counts.count(outcome) for outcome in DETECTION_OUTCOMES
    )
    return prunable / counts.total


# --------------------------------------------------------------------------- summary
@dataclass(frozen=True)
class PruningSummary:
    """All three pruning layers evaluated on one result store."""

    technique: str
    recommended_max_mbf: int
    single_bit_sufficient: Tuple[str, ...]
    pessimistic_max_mbf: int
    prunable_location_fraction: Dict[str, float]

    @property
    def prunable_location_range(self) -> Tuple[float, float]:
        """The min/max prunable fraction across programs (the 27–100 % span)."""
        values = list(self.prunable_location_fraction.values())
        if not values:
            return (0.0, 0.0)
        return (min(values), max(values))


def pruning_summary(
    store: ResultStore,
    technique: str,
    *,
    coverage: float = 0.95,
    tolerance_pp: float = 1.0,
) -> PruningSummary:
    """Evaluate all three pruning layers for one technique over a store."""
    programs = store.programs()
    try:
        bound = recommended_max_mbf_bound(store, technique, coverage=coverage)
    except AnalysisError:
        bound = 0
    try:
        pessimistic_bound = pessimistic_cluster_bound(store, technique)
    except AnalysisError:
        pessimistic_bound = 0
    prunable: Dict[str, float] = {}
    for program in programs:
        try:
            prunable[program] = prunable_first_location_fraction(store, program, technique)
        except AnalysisError:
            continue
    return PruningSummary(
        technique=technique,
        recommended_max_mbf=bound,
        single_bit_sufficient=tuple(
            single_bit_sufficient_programs(store, technique, tolerance_pp=tolerance_pp)
        ),
        pessimistic_max_mbf=pessimistic_bound,
        prunable_location_fraction=prunable,
    )
