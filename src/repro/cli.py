"""Command-line interface: regenerate paper artefacts from a terminal.

Usage (after ``pip install -e .``, or via ``python -m repro``)::

    python -m repro list-programs
    python -m repro table 2
    python -m repro figure 1 --programs crc32,dijkstra --experiments 100
    python -m repro figure 1 --jobs 4 --experiments 2000
    python -m repro figure 5 --programs basicmath,crc32 --max-mbf 2,3,30
    python -m repro table 4 --programs crc32 --experiments 80 --cache results.json
    python -m repro candidates crc32
    python -m repro exhaustive crc32 --prune --validate 0.01 --jobs 4
    python -m repro report --last --cache-dir artifacts/

Every command prints the same text tables the benchmark harness produces.
Campaign results can be cached to a JSON file with ``--cache`` so repeated
invocations only run what is missing.  ``--jobs N`` fans experiments out to a
worker pool (results are bit-identical to a serial run of the same seed), and
``--checkpoint`` persists the store mid-sweep so interrupted runs resume.
Experiments fast-forward over their fault-free prefix by restoring VM
checkpoints; ``--no-fast-forward`` disables this and ``--checkpoint-interval``
pins the checkpoint spacing (both change runtime only, never results).
``--cache-dir DIR`` activates the persistent artifact cache (golden traces,
checkpoints, def-use indices, pruned plans), so repeated invocations and
worker pools pay planning cost once per host; it defaults to
``<cache>.artifacts`` when ``--cache`` is given.

Campaign execution is fault tolerant: crashed or hung workers are restarted
and their chunks retried (``--max-retries``, ``--chunk-timeout``); chunks
that keep crashing are bisected to the offending experiment, which is
quarantined with the ``crashed`` outcome (``--no-quarantine`` aborts
instead).  With an artifact cache active, completed chunks are journalled to
a durable ledger, and a run killed mid-way can be restarted with
``--resume`` to execute only the missing chunks — the assembled results are
byte-identical to an uninterrupted run.  Ctrl-C finishes in-flight chunks,
flushes the ledger and prints resume instructions (a second Ctrl-C aborts).

With an artifact cache active every run also appends a structured JSONL
event log under ``<cache-dir>/runlog/``; ``repro report <key|--last>``
renders it after the fact (phase breakdown, throughput timeline, retry and
quarantine tallies, cache efficiency), and ``--metrics-out FILE`` writes the
run's metrics in Prometheus text format.  Output verbosity: ``--quiet``
keeps only result lines, ``-v`` adds diagnostics; color respects
``NO_COLOR``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.campaign import EngineProgress, ExperimentScale
from repro.experiments import (
    ExperimentSession,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
)
from repro.injection.faultmodel import MAX_MBF_VALUES, win_size_by_index
from repro.programs.registry import all_program_names, get_program
from repro.telemetry.console import ConsoleReporter

_FIGURES = {1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5}


def _parse_programs(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    names = [name.strip() for name in text.split(",") if name.strip()]
    for name in names:
        get_program(name)  # raises ConfigurationError on typos
    return names


def _parse_max_mbf(text: Optional[str]) -> Sequence[int]:
    if not text:
        return MAX_MBF_VALUES
    return tuple(int(part) for part in text.split(","))


def _parse_win_sizes(text: Optional[str]):
    if not text:
        return None
    return [win_size_by_index(index.strip()) for index in text.split(",")]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _build_session(args: argparse.Namespace) -> ExperimentSession:
    scale = ExperimentScale("cli", experiments_per_campaign=args.experiments)
    return ExperimentSession(
        scale=scale,
        cache_path=args.cache,
        cache_dir=getattr(args, "cache_dir", None),
        checkpoint_path=args.checkpoint,
        jobs=args.jobs,
        fast_forward=not args.no_fast_forward,
        checkpoint_interval=args.checkpoint_interval,
        backend=getattr(args, "backend", "decoded"),
        windowed=not getattr(args, "no_windowed", False),
        progress=_progress(_reporter(args)),
        experiment_progress=_experiment_progress(_reporter(args)),
        max_retries=getattr(args, "max_retries", 3),
        chunk_timeout=getattr(args, "chunk_timeout", None),
        quarantine=not getattr(args, "no_quarantine", False),
        resume=getattr(args, "resume", False),
        hosts=getattr(args, "hosts", 0),
        dist_bind=getattr(args, "dist_bind", "127.0.0.1"),
        dist_port=getattr(args, "dist_port", 0),
    )


def _announce_coordinator(session: ExperimentSession, reporter: ConsoleReporter) -> None:
    """Tell the operator where worker agents should dial in."""
    address = session.coordinator_address
    if address is not None:
        host, port = address
        reporter.note(
            f"  coordinator listening on {host}:{port} — attach worker hosts "
            f"with: repro worker {host}:{port}"
        )


def _reporter(args: argparse.Namespace) -> ConsoleReporter:
    return ConsoleReporter.from_flags(
        quiet=getattr(args, "quiet", False),
        verbose=getattr(args, "verbose", False),
    )


def _progress(reporter: ConsoleReporter):
    if reporter.verbosity == 0:
        return None

    def report(message: str) -> None:
        reporter.note(f"  running {message}")

    return report


def _experiment_progress(reporter: ConsoleReporter):
    """Within-campaign progress line with throughput and ETA (stderr)."""
    if reporter.verbosity == 0:
        return None

    def report(progress: EngineProgress) -> None:
        eta = progress.eta_seconds
        eta_text = f"{eta:.0f}s" if eta is not None else "?"
        line = (
            f"    {progress.done}/{progress.total} experiments "
            f"({100.0 * progress.fraction:3.0f}%, "
            f"{progress.experiments_per_second:.0f}/s, ETA {eta_text})"
        )
        # A carriage-return ticker needs the raw stream; the reporter only
        # decides *whether* it is shown, never reformats it.
        end = "\n" if progress.done >= progress.total else "\r"
        print(line, end=end, file=reporter.err, flush=True)

    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures of 'One Bit is (Not) Enough' (DSN 2017).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-programs", help="list the 15 benchmark programs")

    def add_resilience_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--resume",
            action="store_true",
            help="resume an interrupted run from its chunk ledger, executing "
            "only the missing chunks (needs the same --cache/--cache-dir as "
            "the interrupted invocation; results are byte-identical to an "
            "uninterrupted run)",
        )
        sub.add_argument(
            "--max-retries",
            type=int,
            default=3,
            metavar="N",
            help="attempts per chunk before it is bisected down to the "
            "offending experiment (default 3)",
        )
        sub.add_argument(
            "--chunk-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="kill a worker whose chunk exceeds this many seconds "
            "(default: deadlines derived from observed chunk throughput)",
        )
        sub.add_argument(
            "--no-quarantine",
            action="store_true",
            help="abort the run when an experiment keeps crashing workers "
            "instead of quarantining it with the 'crashed' outcome",
        )

    def add_dist_options(
        sub: argparse.ArgumentParser, *, hosts_default: int = 0
    ) -> None:
        sub.add_argument(
            "--hosts",
            type=int,
            default=hosts_default,
            metavar="N",
            help="act as a distributed coordinator sized for N worker hosts: "
            "open a lease-dispatch socket and hand chunks to connecting "
            "'repro worker' agents instead of a local pool (0 = local "
            "execution; results are byte-identical either way)"
            + (" (default 1)" if hosts_default else ""),
        )
        sub.add_argument(
            "--dist-bind",
            default="127.0.0.1",
            metavar="ADDR",
            help="address the coordinator listens on (default 127.0.0.1; the "
            "protocol trusts its peers — bind non-loopback addresses on "
            "trusted networks only)",
        )
        sub.add_argument(
            "--dist-port",
            type=int,
            default=0,
            metavar="PORT",
            help="coordinator port (default 0 = pick an ephemeral port and "
            "print it)",
        )

    def add_output_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--quiet", action="store_true", help="suppress per-campaign progress"
        )
        sub.add_argument(
            "-v",
            "--verbose",
            action="store_true",
            help="print extra diagnostics (run-log locations, cache paths)",
        )
        sub.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="write this run's metrics in Prometheus text format to FILE",
        )

    def add_campaign_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--programs", help="comma-separated program names (default: all 15)")
        sub.add_argument(
            "--experiments", type=int, default=100, help="experiments per campaign (default 100)"
        )
        sub.add_argument("--max-mbf", help="comma-separated max-MBF values (default: Table I)")
        sub.add_argument(
            "--win-sizes", help="comma-separated win-size indices, e.g. w2,w7 (default: Table I)"
        )
        sub.add_argument("--cache", help="JSON file to cache campaign results across runs")
        sub.add_argument(
            "--cache-dir",
            help="directory for the persistent artifact cache (golden traces, "
            "checkpoints, def-use indices, pruned plans); defaults to "
            "<--cache>.artifacts when --cache is given, else off",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for campaign execution (default 1 = serial; "
            "results are identical to a serial run for the same seed)",
        )
        sub.add_argument(
            "--checkpoint",
            help="JSON file to checkpoint the result store to after every "
            "completed campaign; interrupted sweeps resume from it "
            "(defaults to --cache when given)",
        )
        sub.add_argument(
            "--no-fast-forward",
            action="store_true",
            help="replay every experiment's fault-free prefix from scratch "
            "instead of restoring VM checkpoints (slower; results are "
            "bit-identical either way)",
        )
        sub.add_argument(
            "--no-windowed",
            action="store_true",
            help="keep injection hooks armed for the whole faulty run instead "
            "of only inside the fault window (slower; results are "
            "bit-identical either way)",
        )
        sub.add_argument(
            "--checkpoint-interval",
            type=_positive_int,
            default=None,
            metavar="TICKS",
            help="starting spacing (dynamic instructions) between VM "
            "checkpoints during golden profiling (default: auto-tuned from "
            "the golden run length; the snapshot budget applies either way)",
        )
        sub.add_argument(
            "--backend",
            default="decoded",
            choices=("decoded", "compiled", "reference"),
            help="execution backend for experiment runs: 'decoded' (default), "
            "'compiled' (transpiled Python, fastest) or 'reference' (IR "
            "tree-walker oracle); results are bit-identical across all three",
        )
        add_output_options(sub)
        add_resilience_options(sub)
        add_dist_options(sub)

    figure_parser = subparsers.add_parser("figure", help="regenerate a figure (1-5)")
    figure_parser.add_argument("number", type=int, choices=sorted(_FIGURES))
    add_campaign_options(figure_parser)

    table_parser = subparsers.add_parser("table", help="regenerate a table (1-4)")
    table_parser.add_argument("number", type=int, choices=(1, 2, 3, 4))
    add_campaign_options(table_parser)

    # "coordinate" is "campaign" with the distributed coordinator on by
    # default: the same workload surface, dispatched to worker hosts.
    campaign_variants = [
        (
            "campaign",
            "run one fault-injection campaign and print outcome counts "
            "(plus artifact-cache status when --cache-dir is active)",
            0,
        ),
        (
            "coordinate",
            "run one campaign as a distributed coordinator: listen for "
            "'repro worker' agents and dispatch chunks to them under "
            "expiring leases (byte-identical to a local run)",
            1,
        ),
    ]
    for variant_name, variant_help, hosts_default in campaign_variants:
        campaign_parser = subparsers.add_parser(variant_name, help=variant_help)
        campaign_parser.add_argument("program", help="benchmark program name")
        campaign_parser.add_argument(
            "--technique",
            default="inject-on-read",
            choices=("inject-on-read", "inject-on-write"),
            help="injection technique (default inject-on-read)",
        )
        campaign_parser.add_argument(
            "--max-mbf",
            type=_positive_int,
            default=1,
            help="maximum multi-bit-flip count per experiment (default 1)",
        )
        campaign_parser.add_argument(
            "--win-size",
            default="w1",
            help="win-size index from Table I, e.g. w4 (default w1 = no window)",
        )
        campaign_parser.add_argument(
            "--experiments", type=_positive_int, default=50,
            help="experiments to run (default 50)",
        )
        campaign_parser.add_argument(
            "--cache", help="JSON file to cache campaign results across runs"
        )
        campaign_parser.add_argument(
            "--cache-dir",
            help="directory for the persistent artifact cache (golden traces, "
            "checkpoints, generated backend source); defaults to "
            "<--cache>.artifacts when --cache is given, else off",
        )
        campaign_parser.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes (default 1 = serial)",
        )
        campaign_parser.add_argument(
            "--checkpoint", default=None, help=argparse.SUPPRESS
        )
        campaign_parser.add_argument(
            "--no-fast-forward",
            action="store_true",
            help="replay every experiment's fault-free prefix from scratch",
        )
        campaign_parser.add_argument(
            "--no-windowed",
            action="store_true",
            help="keep injection hooks armed for the whole faulty run instead "
            "of only inside the fault window (slower; results are "
            "bit-identical either way)",
        )
        campaign_parser.add_argument(
            "--checkpoint-interval",
            type=_positive_int,
            default=None,
            metavar="TICKS",
            help="starting spacing between VM checkpoints during golden profiling",
        )
        campaign_parser.add_argument(
            "--backend",
            default="decoded",
            choices=("decoded", "compiled", "reference"),
            help="execution backend for experiment runs (default decoded); "
            "results are bit-identical across all three",
        )
        add_output_options(campaign_parser)
        add_resilience_options(campaign_parser)
        add_dist_options(campaign_parser, hosts_default=hosts_default)

    worker_parser = subparsers.add_parser(
        "worker",
        help="serve a coordinator as a worker host: pull chunk leases, "
        "execute them on a local pool warmed from --cache-dir, stream "
        "results back (reconnects with backoff; exits when stood down)",
    )
    worker_parser.add_argument(
        "address",
        help="coordinator address as HOST:PORT (printed by the coordinator)",
    )
    worker_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="local worker processes per lease batch (default 1 = in-process)",
    )
    worker_parser.add_argument(
        "--cache-dir",
        help="this host's persistent artifact cache; leased work warms "
        "golden traces, checkpoints and generated source from here",
    )
    worker_parser.add_argument(
        "--name",
        help="host label in coordinator telemetry (default hostname:pid)",
    )
    worker_parser.add_argument(
        "--reconnect-attempts",
        type=int,
        default=20,
        metavar="N",
        help="consecutive failed dials before giving up (default 20; "
        "backoff is exponential, capped at 5s)",
    )
    worker_parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="local retry attempts per chunk before reporting failure to "
        "the coordinator (default 1; the coordinator then re-issues)",
    )

    candidates_parser = subparsers.add_parser(
        "candidates",
        help="per-technique candidate and single-bit error-space counts of a program",
    )
    candidates_parser.add_argument(
        "program", help="benchmark program name, or 'all' for every program"
    )

    exhaustive_parser = subparsers.add_parser(
        "exhaustive",
        help="run the full single-bit error space of a program "
        "(def-use pruned by default)",
    )
    exhaustive_parser.add_argument("program", help="benchmark program name")
    exhaustive_parser.add_argument(
        "--technique",
        default="inject-on-read",
        choices=("inject-on-read", "inject-on-write"),
        help="injection technique (default inject-on-read)",
    )
    prune_group = exhaustive_parser.add_mutually_exclusive_group()
    prune_group.add_argument(
        "--prune",
        dest="prune",
        action="store_true",
        default=True,
        help="execute one representative per def-use equivalence class and "
        "infer the rest (default)",
    )
    prune_group.add_argument(
        "--no-prune",
        dest="prune",
        action="store_false",
        help="execute every single-bit error of the space",
    )
    exhaustive_parser.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        metavar="N",
        help="run only a weighted sample of N representatives "
        "(implies --prune)",
    )
    exhaustive_parser.add_argument(
        "--validate",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="re-run this fraction of non-representative class members and "
        "report the misprediction rate (pruned mode only)",
    )
    exhaustive_parser.add_argument(
        "--seed", type=int, default=2017, help="seed for budgeted/validation sampling"
    )
    exhaustive_parser.add_argument(
        "--cache", help="JSON file to cache campaign results across runs"
    )
    exhaustive_parser.add_argument(
        "--cache-dir",
        help="directory for the persistent artifact cache (golden traces, "
        "checkpoints, def-use indices, pruned plans); defaults to "
        "<--cache>.artifacts when --cache is given, else off",
    )
    exhaustive_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign execution (default 1 = serial; "
        "results are identical to a serial run for the same seed)",
    )
    exhaustive_parser.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="replay every experiment's fault-free prefix from scratch "
        "instead of restoring VM checkpoints (slower; results are "
        "bit-identical either way)",
    )
    exhaustive_parser.add_argument(
        "--no-windowed",
        action="store_true",
        help="keep injection hooks armed for the whole faulty run instead "
        "of only inside the fault window (slower; results are "
        "bit-identical either way)",
    )
    exhaustive_parser.add_argument(
        "--checkpoint-interval",
        type=_positive_int,
        default=None,
        metavar="TICKS",
        help="starting spacing (dynamic instructions) between VM "
        "checkpoints during golden profiling (default: auto-tuned from "
        "the golden run length; the snapshot budget applies either way)",
    )
    add_output_options(exhaustive_parser)
    add_resilience_options(exhaustive_parser)
    add_dist_options(exhaustive_parser)

    report_parser = subparsers.add_parser(
        "report",
        help="render the telemetry of a recorded run (phases, throughput "
        "timeline, supervision and cache stats) from its JSONL event log",
    )
    report_parser.add_argument(
        "key",
        nargs="?",
        help="run key of the event log to render (a unique prefix is enough); "
        "omit with --last",
    )
    report_parser.add_argument(
        "--last",
        action="store_true",
        help="render the most recently written run log",
    )
    report_parser.add_argument(
        "--cache",
        help="result-store JSON of the run (locates its artifact cache and "
        "run logs, as during execution)",
    )
    report_parser.add_argument(
        "--cache-dir",
        help="artifact cache directory of the run (run logs live under "
        "<cache-dir>/runlog); defaults to <--cache>.artifacts, else "
        "$REPRO_CACHE_DIR",
    )
    report_parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="also write the run's recorded metrics snapshot in Prometheus "
        "text format to FILE",
    )

    return parser


def _run_figure(args: argparse.Namespace) -> str:
    programs = _parse_programs(args.programs)
    session = _build_session(args)
    _announce_coordinator(session, _reporter(args))
    function = _FIGURES[args.number]
    try:
        if args.number == 1:
            result = function(session, programs)
        elif args.number == 3:
            result = function(
                session, programs, win_size_specs=_parse_win_sizes(args.win_sizes)
            )
        elif args.number == 2:
            result = function(
                session, programs, max_mbf_values=_parse_max_mbf(args.max_mbf)
            )
        else:
            result = function(
                session,
                programs,
                max_mbf_values=_parse_max_mbf(args.max_mbf),
                win_size_specs=_parse_win_sizes(args.win_sizes),
            )
    finally:
        session.close()
    return f"{result.name}: {result.description}\n\n{result.text}"


def _run_table(args: argparse.Namespace) -> str:
    if args.number == 1:
        result = table1()
    elif args.number == 2:
        result = table2(_parse_programs(args.programs))
    else:
        session = _build_session(args)
        _announce_coordinator(session, _reporter(args))
        try:
            if args.number == 3:
                result = table3(
                    session,
                    _parse_programs(args.programs),
                    max_mbf_values=_parse_max_mbf(args.max_mbf),
                    win_size_specs=_parse_win_sizes(args.win_sizes),
                )
            else:
                result = table4(
                    session,
                    _parse_programs(args.programs),
                    win_size_specs=_parse_win_sizes(args.win_sizes),
                )
        finally:
            session.close()
    return f"{result.name}: {result.description}\n\n{result.text}"


def _phase_lines(phase_seconds, experiments: int, label: str = "  ") -> list:
    """Per-phase wall-clock breakdown plus throughput, as printable lines.

    ``phase_seconds`` maps restore / pre_window / window / tail to cumulative
    seconds (empty when the run came entirely from the result cache, in which
    case nothing is printed).
    """
    if not phase_seconds:
        return []
    total = sum(phase_seconds.values())
    if total <= 0.0:
        return []
    breakdown = ", ".join(
        f"{name}={seconds:.3f}s" for name, seconds in phase_seconds.items()
    )
    lines = [f"{label}phase time  {breakdown} (total {total:.3f}s)"]
    if experiments > 0:
        lines.append(f"{label}throughput  {experiments / total:.0f} experiments/s")
    return lines


def _supervision_lines(supervision: dict, label: str = "  ") -> list:
    """Fault-tolerance summary of the most recent engine run, if eventful.

    Silent for the common case (no retries, restarts, quarantines or ledger
    replay) so healthy runs look exactly as before.
    """
    if not supervision:
        return []
    lines = []
    counters = [
        (key, supervision.get(key, 0))
        for key in ("retries", "worker_restarts", "timeouts", "bisections")
    ]
    if any(value for _, value in counters):
        lines.append(
            f"{label}supervision "
            + ", ".join(f"{key}={value}" for key, value in counters)
        )
    quarantined = supervision.get("quarantined_units", 0)
    if quarantined:
        lines.append(
            f"{label}quarantined {quarantined} experiment(s) recorded as 'crashed'"
        )
    if supervision.get("degraded"):
        lines.append(
            f"{label}degraded    worker pool gave up after repeated crashes; "
            f"{supervision.get('serial_fallback_units', 0)} experiment(s) "
            "finished serially in-process"
        )
    loaded = supervision.get("ledger_loaded_units", 0)
    if loaded:
        lines.append(
            f"{label}resumed     {loaded} experiment(s) replayed from the "
            f"chunk ledger ({supervision.get('ledger_loaded_chunks', 0)} chunks)"
        )
    distributed = supervision.get("distributed") or {}
    if distributed.get("hosts_joined"):
        lines.append(
            f"{label}distributed "
            + ", ".join(f"{key}={value}" for key, value in distributed.items())
        )
    return lines


def _run_campaign(args: argparse.Namespace) -> str:
    """``repro campaign``: one campaign, outcome counts and cache status.

    The trailing artifact-cache lines state explicitly whether generated
    backend source was produced this run or loaded from the cache — the CI
    round-trip smoke greps for them.
    """
    from repro.campaign import CampaignConfig

    get_program(args.program)  # raises ConfigurationError on typos
    session = _build_session(args)
    _announce_coordinator(session, _reporter(args))
    config = CampaignConfig(
        program=args.program,
        technique=args.technique,
        max_mbf=args.max_mbf,
        win_size=win_size_by_index(args.win_size),
        experiments=args.experiments,
    )
    try:
        store = session.ensure([config])
    finally:
        session.close()
    result = store.get(config)
    counts = result.outcome_counts.as_dict()
    lines = [
        f"{config.campaign_id} · backend={args.backend} · "
        f"{result.experiments} experiments",
        "  outcomes  " + ", ".join(f"{k}={v}" for k, v in counts.items() if v),
        f"  SDC       {result.sdc_percentage:.3f}%",
    ]
    lines.extend(_phase_lines(result.phase_seconds, result.experiments))
    lines.extend(_supervision_lines(getattr(session.engine, "supervision", {}) or {}))
    cache = session.artifact_cache
    if cache is not None:
        stats = cache.stats
        lines.append(f"  artifact cache  {stats.describe()} ({cache.root})")
        if args.backend == "compiled":
            if stats.hits.get("codegen", 0):
                lines.append("  compiled source loaded from cache")
            elif stats.stores.get("codegen", 0):
                lines.append("  compiled source generated and stored")
    if getattr(args, "verbose", False) and session.runlog_dir is not None:
        lines.append(
            f"  run log   events under {session.runlog_dir} "
            "(render with: repro report --last)"
        )
    return "\n".join(lines)


def _run_candidates(args: argparse.Namespace) -> str:
    """``repro candidates``: error-space shape of one (or every) program.

    The printed counts are cross-checked against the Table II expectations:
    inject-on-read candidates must dominate inject-on-write candidates
    (stores and branches read registers but define none), and both must be
    positive for every benchmark.
    """
    from repro.errorspace import enumerate_error_space
    from repro.injection.techniques import TECHNIQUES
    from repro.programs.registry import get_experiment_runner

    names = all_program_names() if args.program == "all" else [args.program]
    for name in names:
        get_program(name)  # raises ConfigurationError on typos
    lines = [
        f"{'program':16s} {'technique':16s} {'candidates':>10s} "
        f"{'locations':>10s} {'error space':>12s}"
    ]
    for name in names:
        runner = get_experiment_runner(name)
        golden = runner.golden
        counts = {}
        for technique in TECHNIQUES:
            space = enumerate_error_space(golden, technique)
            counts[technique.name] = technique.candidate_instruction_count(golden)
            lines.append(
                f"{name:16s} {technique.name:16s} "
                f"{counts[technique.name]:10d} {space.candidate_count:10d} "
                f"{space.size:12d}"
            )
        read_count = counts["inject-on-read"]
        write_count = counts["inject-on-write"]
        if not (read_count >= write_count > 0):
            raise SystemExit(
                f"{name}: candidate counts violate the Table II expectation "
                f"(read={read_count}, write={write_count})"
            )
    lines.append("")
    lines.append("Table II cross-check: read candidates >= write candidates > 0 for "
                 f"{len(names)} program(s) [OK]")
    return "\n".join(lines)


def _run_exhaustive(args: argparse.Namespace) -> str:
    session = ExperimentSession(
        cache_path=args.cache,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        fast_forward=not args.no_fast_forward,
        checkpoint_interval=args.checkpoint_interval,
        windowed=not args.no_windowed,
        progress=_progress(_reporter(args)),
        experiment_progress=_experiment_progress(_reporter(args)),
        max_retries=args.max_retries,
        chunk_timeout=args.chunk_timeout,
        quarantine=not args.no_quarantine,
        resume=args.resume,
        hosts=getattr(args, "hosts", 0),
        dist_bind=getattr(args, "dist_bind", "127.0.0.1"),
        dist_port=getattr(args, "dist_port", 0),
    )
    _announce_coordinator(session, _reporter(args))
    get_program(args.program)  # raises ConfigurationError on typos
    if args.budget is not None and not args.prune:
        raise SystemExit(
            "repro exhaustive: --budget samples pruned-plan representatives "
            "and cannot be combined with --no-prune"
        )
    mode = "budgeted" if args.budget is not None else ("pruned" if args.prune else "exhaustive")
    try:
        result = session.run_exhaustive(
            args.program,
            args.technique,
            mode=mode,
            budget=args.budget,
            validate=args.validate,
            seed=args.seed,
        )
    finally:
        session.close()
    counts = result.outcome_counts
    lines = [
        f"{result.program} / {result.technique} / single-bit {result.mode}",
        f"  error space        {result.total_errors} errors "
        f"({result.candidate_count} candidate locations)",
        f"  executed           {result.executed_experiments} experiments "
        f"({result.reduction_factor:.2f}x fewer than the space)",
        f"  inferred           {result.inferred_errors} errors settled statically",
        "  weighted outcomes  "
        + ", ".join(f"{k}={v}" for k, v in counts.as_dict().items() if v),
        f"  SDC                {result.sdc_percentage:.3f}%",
    ]
    lines.extend(
        _phase_lines(
            getattr(session.engine, "phase_seconds", {}) or {},
            result.executed_experiments,
            label="  ",
        )
    )
    lines.extend(
        _supervision_lines(getattr(session.engine, "supervision", {}) or {}, label="  ")
    )
    if result.validation_sampled:
        lines.append(
            f"  validation         {result.validation_mispredicted}/"
            f"{result.validation_sampled} mispredicted "
            f"({100.0 * result.misprediction_rate:.2f}%)"
        )
    cache = session.artifact_cache
    if cache is not None:
        stats = cache.stats
        # "warm" means the *plan* specifically came from the cache — a golden
        # trace hit alone still pays the full inference cost.
        plan_hits = stats.hits.get("plan", 0)
        lines.append(
            f"  artifact cache     {stats.describe()} ({cache.root}); "
            + (
                "warm (planning loaded from cache)"
                if plan_hits
                else "cold (artifacts derived and stored)"
            )
        )
    if getattr(args, "verbose", False) and session.runlog_dir is not None:
        lines.append(
            f"  run log            events under {session.runlog_dir} "
            "(render with: repro report --last)"
        )
    return "\n".join(lines)


def _run_worker(args: argparse.Namespace) -> str:
    """``repro worker``: serve a coordinator until stood down."""
    from repro.dist import WorkerAgent

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(
            "repro worker: address must be HOST:PORT (as printed by the "
            "coordinator), e.g. 127.0.0.1:43117"
        )
    agent = WorkerAgent(
        host,
        int(port),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        name=args.name,
        reconnect_attempts=args.reconnect_attempts,
        max_retries=args.max_retries,
    )
    code = agent.run()
    if code != 0:
        raise SystemExit(
            f"repro worker: coordinator at {args.address} unreachable after "
            f"{args.reconnect_attempts} attempts"
        )
    return f"worker {agent.name}: stood down cleanly"


def _runlog_directory(args: argparse.Namespace) -> Path:
    """The run-log directory implied by ``--cache-dir``/``--cache``/env."""
    from repro.experiments.session import default_artifact_dir

    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and getattr(args, "cache", None):
        cache_dir = default_artifact_dir(args.cache)
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir is None:
        raise SystemExit(
            "repro report: no artifact cache to read run logs from; pass "
            "--cache-dir (or --cache, or set REPRO_CACHE_DIR) matching the "
            "recorded run"
        )
    return Path(cache_dir) / "runlog"


def _run_report(args: argparse.Namespace) -> str:
    """``repro report``: render a recorded run's telemetry after the fact."""
    from repro.telemetry.events import find_run_log, latest_run_log, read_events
    from repro.telemetry.metrics import snapshot_from
    from repro.telemetry.report import build_report, render_report

    runlog_dir = _runlog_directory(args)
    if args.key:
        path = find_run_log(runlog_dir, args.key)
        if path is None:
            raise SystemExit(
                f"repro report: no unique run log matching {args.key!r} "
                f"under {runlog_dir}"
            )
    elif args.last:
        path = latest_run_log(runlog_dir)
        if path is None:
            raise SystemExit(f"repro report: no run logs under {runlog_dir}")
    else:
        raise SystemExit("repro report: pass a run key or --last")
    events, status = read_events(path)
    report = build_report(events, status)
    if args.metrics_out:
        snapshot = report.get("metrics") or {}
        Path(args.metrics_out).write_text(
            snapshot_from(snapshot).to_prometheus_text()
        )
    return render_report(report)


def _write_live_metrics(args: argparse.Namespace) -> None:
    """Dump the process registry after a run (``--metrics-out`` on commands)."""
    metrics_out = getattr(args, "metrics_out", None)
    if not metrics_out:
        return
    from repro.telemetry.metrics import registry

    Path(metrics_out).write_text(registry().to_prometheus_text())


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.errors import CampaignInterrupted

    args = build_parser().parse_args(argv)
    reporter = _reporter(args)
    if args.command == "list-programs":
        for name in all_program_names():
            definition = get_program(name)
            reporter.result(
                f"{name:16s} {definition.suite}/{definition.package:11s} "
                f"{definition.description}"
            )
        return 0
    commands = {
        "figure": _run_figure,
        "table": _run_table,
        "campaign": _run_campaign,
        "coordinate": _run_campaign,
        "worker": _run_worker,
        "candidates": _run_candidates,
        "exhaustive": _run_exhaustive,
        "report": _run_report,
    }
    runner = commands.get(args.command)
    if runner is None:
        return 2  # pragma: no cover - argparse enforces valid commands
    try:
        reporter.result(runner(args))
        if args.command != "report":
            _write_live_metrics(args)
        return 0
    except CampaignInterrupted as interrupted:
        reporter.warn(f"\ninterrupted: {interrupted}")
        if interrupted.resumable:
            argv_list = list(argv) if argv is not None else sys.argv[1:]
            if "--resume" not in argv_list:
                argv_list.append("--resume")
            reporter.warn("resume with: repro " + " ".join(argv_list))
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
