"""Fault-tolerant lease coordinator: the multi-host dispatch transport.

:class:`CoordinatorTransport` implements the engine's
:class:`~repro.campaign.engine.DispatchTransport` seam over a TCP listener.
Worker-host agents (:mod:`repro.dist.worker`) connect, announce their
capacity, and *pull* work: the coordinator grants deterministic, tick-sorted
chunk ranges under expiring leases and records completions through the
engine's callbacks — which fsync the same write-ahead chunk ledger the local
path uses, so coordinator crash recovery is plain ``--resume``.

Robustness model (mirrors the single-host supervisor, host-granular):

* a **lease** is one chunk granted to one host; it expires when the host
  stops heartbeating (soft TTL) or blows its execution deadline (hard
  deadline, EWMA-derived like the supervisor's), and the chunk is re-issued
  — preferring a different host;
* a host that disconnects, dies or partitions has all its leases re-issued
  with the supervisor's retry/bisect/quarantine escalation;
* duplicate completions (a re-issued chunk finishing twice) resolve
  first-recorded-wins: the ledger fsync inside ``on_chunk_done`` is the
  authority, later arrivals are dropped as ``duplicate_completion`` events;
* hosts may join or rejoin mid-run and are granted work immediately;
* if no host is serving and nothing is in flight for
  ``local_fallback_after`` seconds, the remaining chunks run on an
  in-process :class:`~repro.campaign.engine.SupervisedPoolTransport` —
  a coordinator with no cluster degrades to the ordinary local engine;
* SIGINT/SIGTERM stop granting, drain in-flight leases, tell connected
  hosts to stand down, and return with ``interrupted`` set so the engine
  raises :class:`~repro.errors.CampaignInterrupted` (the CLI then prints
  the exact ``--resume`` command and exits 130).

Determinism: chunks are location-independent (derived seeds, tick-sorted
payloads) and merge by start offset, so *which* host ran a chunk — or how
many times it was re-issued — cannot change the assembled bytes.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaign.engine import (
    DispatchRequest,
    DispatchTransport,
    SupervisedPoolTransport,
)
from repro.campaign.supervisor import (
    CHAOS_ABORT_ENV,
    ChunkTask,
    QuarantinedChunk,
    SupervisedRun,
    _SignalGuard,
)
from repro.dist.protocol import (
    MSG_DONE,
    MSG_FAIL,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_METRICS,
    MSG_NEXT,
    MSG_STAND_DOWN,
    MSG_WAIT,
    MSG_WELCOME,
    MSG_WORK,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.errors import CampaignExecutionError
from repro.telemetry import metrics as telemetry_metrics


class _Host:
    """One connected worker-host agent."""

    __slots__ = (
        "host_id",
        "conn",
        "name",
        "capacity",
        "last_seen",
        "leases",
        "severed",
        "send_lock",
    )

    def __init__(self, host_id: int, conn: socket.socket, hello: dict) -> None:
        self.host_id = host_id
        self.conn = conn
        self.name = str(hello.get("name") or f"host-{host_id}")
        self.capacity = max(1, int(hello.get("jobs", 1) or 1))
        self.last_seen = time.monotonic()
        #: lease_id -> _Lease, owned by the execute() thread.
        self.leases: Dict[int, "_Lease"] = {}
        self.severed = False
        self.send_lock = threading.Lock()

    def send(self, message: dict) -> bool:
        try:
            with self.send_lock:
                send_frame(self.conn, message)
            return True
        except (OSError, ProtocolError):
            return False


@dataclass
class _Lease:
    """One chunk granted to one host, with its expiry bookkeeping."""

    lease_id: int
    task: ChunkTask
    host: _Host
    granted_at: float
    deadline: float


@dataclass
class CoordinatorStats:
    """Distributed-layer tallies, surfaced next to supervision counters."""

    hosts_joined: int = 0
    hosts_left: int = 0
    leases_granted: int = 0
    leases_expired: int = 0
    duplicate_completions: int = 0
    local_fallback_units: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class CoordinatorTransport(DispatchTransport):
    """Socket-based lease dispatch across worker hosts.

    The listener opens in the constructor (``port=0`` picks an ephemeral
    port; read :attr:`address`) and persists across ``execute`` rounds, so
    one coordinator session serves all three dispatch paths — inference,
    error space, experiments — to the same connected hosts.
    """

    name = "distributed"

    def __init__(
        self,
        bind: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_ttl: float = 15.0,
        heartbeat_interval: Optional[float] = None,
        local_fallback_after: float = 30.0,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        deadline_factor: float = 8.0,
        deadline_floor: float = 5.0,
        initial_deadline: float = 120.0,
    ) -> None:
        self._listener = socket.create_server((bind, port))
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self.lease_ttl = max(0.2, lease_ttl)
        self.heartbeat_interval = heartbeat_interval or max(
            0.1, self.lease_ttl / 3.0
        )
        self.local_fallback_after = local_fallback_after
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._deadline_factor = deadline_factor
        self._deadline_floor = deadline_floor
        self._initial_deadline = initial_deadline
        self._unit_seconds: Optional[float] = None
        self._events: "queue.Queue" = queue.Queue()
        self._hosts: Dict[int, _Host] = {}
        self._hosts_lock = threading.Lock()
        self._host_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        self._round = 0
        self._active = False
        self._closed = False
        self.stats = CoordinatorStats()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()

    # -- connection plumbing (reader threads) -------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn)
        except (ProtocolError, OSError):
            hello = None
        if not hello or hello.get("type") != MSG_HELLO:
            try:
                conn.close()
            except OSError:
                pass
            return
        host = _Host(next(self._host_ids), conn, hello)
        if not host.send(
            {
                "type": MSG_WELCOME,
                "version": PROTOCOL_VERSION,
                "heartbeat_interval": self.heartbeat_interval,
                "lease_ttl": self.lease_ttl,
            }
        ):
            return
        with self._hosts_lock:
            self._hosts[host.host_id] = host
        self._events.put(("join", host, None))
        reason = "connection closed"
        while True:
            try:
                message = recv_frame(conn)
            except ProtocolError as exc:
                reason = str(exc)
                break
            except OSError as exc:
                reason = f"socket error: {exc!r}"
                break
            if message is None:
                break
            host.last_seen = time.monotonic()
            mtype = message.get("type")
            if mtype == MSG_HEARTBEAT:
                continue
            if mtype == MSG_NEXT and not self._active:
                # Between dispatch rounds there is nothing to grant; answer
                # directly so idle agents never time out waiting.
                host.send({"type": MSG_WAIT})
                continue
            self._events.put(("msg", host, message))
        with self._hosts_lock:
            self._hosts.pop(host.host_id, None)
        try:
            conn.close()
        except OSError:
            pass
        self._events.put(("gone", host, reason))

    def _sever(self, host: _Host, reason: str) -> None:
        """Force-disconnect a host; its reader thread reports ``gone``."""
        if host.severed:
            return
        host.severed = True
        try:
            host.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            host.conn.close()
        except OSError:
            pass

    # -- deadline model (same EWMA discipline as the supervisor) -------------------

    def _deadline(self, request: DispatchRequest, task: ChunkTask, now: float, batch: int) -> float:
        if request.chunk_timeout is not None:
            return now + request.chunk_timeout
        if self._unit_seconds is None:
            return now + self._initial_deadline
        # Worst case the host runs its whole grant batch sequentially before
        # this lease; scale the allowance so parallel agents are never
        # punished for honest queueing.
        expected = self._unit_seconds * max(1, task.size) * max(1, batch)
        return now + max(self._deadline_floor, self._deadline_factor * expected)

    def _observe(self, lease: _Lease, now: float) -> None:
        sample = max(1e-6, (now - lease.granted_at) / max(1, lease.task.size))
        if self._unit_seconds is None:
            self._unit_seconds = sample
        else:
            self._unit_seconds += 0.3 * (sample - self._unit_seconds)

    # -- the dispatch round --------------------------------------------------------

    def execute(self, request: DispatchRequest) -> SupervisedRun:
        self._round += 1
        run = SupervisedRun()
        stats = run.stats
        pending: List[ChunkTask] = sorted(request.tasks, key=lambda t: t.chunk_id)
        leases: Dict[int, _Lease] = {}
        completed: set = set()
        #: chunk_id -> host_id of the last host that failed it (for re-issue
        #: placement: prefer a different host when one exists).
        last_failed: Dict[int, int] = {}
        started = time.monotonic()
        last_activity = started
        try:
            abort_after = int(os.environ.get(CHAOS_ABORT_ENV, "0") or 0)
        except ValueError:
            abort_after = 0
        guard = _SignalGuard()
        guard.install()

        def emit(event_type: str, **fields) -> None:
            if request.on_event is None:
                return
            try:
                request.on_event(event_type, **fields)
            except Exception:
                pass

        def requeue(task: ChunkTask) -> None:
            # Keep pending sorted by chunk offset so re-issued work goes back
            # out ahead of untouched higher offsets rather than at the tail.
            pending.append(task)
            pending.sort(key=lambda t: t.chunk_id)

        def fail(task: ChunkTask, error: str, now: float) -> None:
            task.attempts += 1
            if task.attempts <= request.max_retries:
                stats.retries += 1
                delay = min(
                    self._backoff_cap,
                    self._backoff_base * (2 ** (task.attempts - 1)),
                )
                task.not_before = now + delay
                requeue(task)
                emit(
                    "chunk_retried",
                    chunk=task.chunk_id,
                    count=task.size,
                    attempts=task.attempts,
                )
            elif task.size > 1 and request.split is not None:
                stats.bisections += 1
                emit("chunk_bisected", chunk=task.chunk_id, count=task.size)
                for child in request.split(task):
                    child.attempts = 0
                    child.not_before = now
                    requeue(child)
            elif request.quarantine:
                stats.quarantined_units += task.size
                run.quarantined.append(QuarantinedChunk(task, error))
                emit(
                    "quarantine",
                    chunk=task.chunk_id,
                    units=task.size,
                    reason=error.strip()[-200:],
                )
            else:
                raise CampaignExecutionError(
                    f"chunk {task.chunk_id} (+{task.size}) failed "
                    f"{task.attempts} times across hosts and quarantine is "
                    f"disabled:\n{error}"
                )

        def revoke_host_leases(host: _Host, reason: str, now: float) -> None:
            for lease in list(host.leases.values()):
                host.leases.pop(lease.lease_id, None)
                leases.pop(lease.lease_id, None)
                last_failed[lease.task.chunk_id] = host.host_id
                fail(lease.task, reason, now)

        def accept_done(host: _Host, message: dict, now: float) -> None:
            nonlocal last_activity
            chunk_id = message.get("chunk")
            lease = leases.pop(message.get("lease"), None)
            if lease is not None:
                lease.host.leases.pop(lease.lease_id, None)
            if chunk_id in completed:
                # The chunk was re-issued and another execution already
                # fsync'd its ledger record: first wins, this one is noise.
                self.stats.duplicate_completions += 1
                emit("duplicate_completion", chunk=chunk_id, host=host.name)
                return
            task: Optional[ChunkTask] = None
            if lease is not None:
                task = lease.task
                self._observe(lease, now)
            else:
                # The lease expired (or its host was severed) but the work
                # itself survived and arrived first: still first-wins.  The
                # chunk may be queued again or leased to another host —
                # withdraw it from wherever it lives.
                task = next(
                    (t for t in pending if t.chunk_id == chunk_id), None
                )
                if task is not None:
                    pending.remove(task)
                else:
                    other = next(
                        (
                            l
                            for l in leases.values()
                            if l.task.chunk_id == chunk_id
                        ),
                        None,
                    )
                    if other is not None:
                        leases.pop(other.lease_id, None)
                        other.host.leases.pop(other.lease_id, None)
                        task = other.task
            if task is None:
                self.stats.duplicate_completions += 1
                emit("duplicate_completion", chunk=chunk_id, host=host.name)
                return
            metrics_delta = message.get("metrics")
            if metrics_delta:
                telemetry_metrics.registry().merge(metrics_delta)
            completed.add(chunk_id)
            run.results[chunk_id] = message.get("body")
            stats.chunks_completed += 1
            last_activity = now
            if request.on_chunk_done is not None:
                request.on_chunk_done(task, message.get("body"))
            if (
                abort_after
                and stats.chunks_completed >= abort_after
                and not guard.stop_requested
            ):
                guard.stop_requested = True

        def grant(host: _Host, now: float) -> None:
            nonlocal last_activity
            if guard.stop_requested:
                host.send(
                    {
                        "type": MSG_STAND_DOWN,
                        "final": False,
                        "reason": "interrupted",
                    }
                )
                return
            free = host.capacity - len(host.leases)
            if free <= 0 or not pending:
                host.send({"type": MSG_WAIT})
                return
            eligible = [t for t in pending if t.not_before <= now]
            if len(self._snapshot_hosts()) > 1:
                preferred = [
                    t
                    for t in eligible
                    if last_failed.get(t.chunk_id) != host.host_id
                ]
                if preferred:
                    eligible = preferred
            if not eligible:
                host.send({"type": MSG_WAIT})
                return
            batch = eligible[:free]
            entries = []
            for task in batch:
                pending.remove(task)
                lease = _Lease(
                    lease_id=next(self._lease_ids),
                    task=task,
                    host=host,
                    granted_at=now,
                    deadline=self._deadline(request, task, now, len(batch)),
                )
                leases[lease.lease_id] = lease
                host.leases[lease.lease_id] = lease
                self.stats.leases_granted += 1
                entries.append(
                    {
                        "lease": lease.lease_id,
                        "fn": task.fn,
                        "chunk": task.chunk_id,
                        "count": task.size,
                        "payload": task.payload,
                    }
                )
                emit(
                    "lease_granted",
                    chunk=task.chunk_id,
                    count=task.size,
                    host=host.name,
                )
                if request.on_grant is not None and task.attempts == 0:
                    request.on_grant(task)
            last_activity = now
            sent = host.send(
                {
                    "type": MSG_WORK,
                    "round": self._round,
                    "kind": request.kind,
                    "program": request.program,
                    "provider": request.provider,
                    "initializer": request.initializer,
                    "leases": entries,
                }
            )
            if not sent:
                self._sever(host, "send failed")

        def handle_event(event, now: float) -> None:
            nonlocal last_activity
            name, host, detail = event
            if name == "join":
                self.stats.hosts_joined += 1
                last_activity = now
                emit(
                    "worker_joined",
                    host=host.name,
                    capacity=host.capacity,
                )
                return
            if name == "gone":
                self.stats.hosts_left += 1
                if host.leases:
                    stats.worker_restarts += 1
                emit("worker_left", host=host.name, reason=str(detail)[-200:])
                revoke_host_leases(host, f"host left: {detail}", now)
                return
            # name == "msg"
            mtype = detail.get("type")
            if mtype == MSG_NEXT:
                grant(host, now)
            elif mtype == MSG_DONE:
                accept_done(host, detail, now)
            elif mtype == MSG_FAIL:
                lease = leases.pop(detail.get("lease"), None)
                if lease is not None:
                    lease.host.leases.pop(lease.lease_id, None)
                    last_failed[lease.task.chunk_id] = host.host_id
                    fail(
                        lease.task,
                        str(detail.get("error", "worker reported failure")),
                        now,
                    )
            elif mtype == MSG_METRICS:
                delta = detail.get("delta")
                if delta:
                    telemetry_metrics.registry().merge(delta)

        self._active = True
        try:
            while True:
                if not pending and not leases:
                    break
                if guard.stop_requested:
                    stats.interrupted = True
                    if not leases:
                        break
                try:
                    event = self._events.get(timeout=0.1)
                except queue.Empty:
                    event = None
                now = time.monotonic()
                if event is not None:
                    handle_event(event, now)
                    while True:
                        try:
                            event = self._events.get_nowait()
                        except queue.Empty:
                            break
                        handle_event(event, time.monotonic())
                now = time.monotonic()

                # Soft expiry: a host that stopped heartbeating loses all its
                # leases (sever → its reader reports gone → chunks re-issue).
                for host in self._snapshot_hosts():
                    if host.leases and now - host.last_seen > self.lease_ttl:
                        stats.timeouts += 1
                        self.stats.leases_expired += len(host.leases)
                        emit(
                            "lease_expired",
                            host=host.name,
                            chunks=sorted(
                                l.task.chunk_id for l in host.leases.values()
                            ),
                            reason="heartbeat lost",
                        )
                        self._sever(host, "lease TTL exceeded")

                # Hard deadline: a heartbeating host whose chunk is wedged.
                for lease in list(leases.values()):
                    if now > lease.deadline:
                        stats.timeouts += 1
                        self.stats.leases_expired += 1
                        leases.pop(lease.lease_id, None)
                        lease.host.leases.pop(lease.lease_id, None)
                        last_failed[lease.task.chunk_id] = lease.host.host_id
                        emit(
                            "lease_expired",
                            host=lease.host.name,
                            chunks=[lease.task.chunk_id],
                            reason="deadline exceeded",
                        )
                        fail(
                            lease.task,
                            f"lease deadline exceeded on {lease.host.name}",
                            now,
                        )

                # Graceful degradation: nobody is serving and nothing moved
                # for local_fallback_after seconds — run the rest here.
                if (
                    pending
                    and not leases
                    and not guard.stop_requested
                    and not self._snapshot_hosts()
                    and now - last_activity >= self.local_fallback_after
                ):
                    remaining = sorted(pending, key=lambda t: t.chunk_id)
                    pending.clear()
                    units = sum(t.size for t in remaining)
                    self.stats.local_fallback_units += units
                    emit("dist_local_fallback", chunks=len(remaining), units=units)
                    local = SupervisedPoolTransport().execute(
                        dataclasses.replace(request, tasks=remaining)
                    )
                    run.results.update(local.results)
                    run.quarantined.extend(local.quarantined)
                    run.unfinished.extend(local.unfinished)
                    completed.update(local.results)
                    stats.merge(local.stats)
                    break
        finally:
            self._active = False
            guard.restore()
            if guard.stop_requested:
                for host in self._snapshot_hosts():
                    host.send(
                        {
                            "type": MSG_STAND_DOWN,
                            "final": False,
                            "reason": "interrupted",
                        }
                    )
        run.unfinished.extend(pending)
        run.unfinished.sort(key=lambda t: t.chunk_id)
        return run

    def _snapshot_hosts(self) -> List[_Host]:
        with self._hosts_lock:
            return list(self._hosts.values())

    @property
    def connected_hosts(self) -> List[str]:
        return [host.name for host in self._snapshot_hosts()]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for host in self._snapshot_hosts():
            host.send({"type": MSG_STAND_DOWN, "final": True, "reason": "finished"})
            self._sever(host, "coordinator closing")
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
