"""Network-layer chaos knobs for distributed dispatch tests.

Extends the process-level ``REPRO_CHAOS_*`` family (see
:mod:`repro.campaign.supervisor`) across the host boundary.  All knobs are
read in the **worker agent** and trigger on the *n*-th lease it has received
over its lifetime, so each fires exactly once per agent:

``REPRO_CHAOS_NET_KILL_NTH_CHUNK``
    The agent hard-exits (``os._exit(137)``) upon receiving its *n*-th
    lease — a dead worker host.  The coordinator must expire the lease and
    re-issue the chunk elsewhere.

``REPRO_CHAOS_NET_SEVER_NTH_CHUNK``
    The agent abruptly closes its connection upon receiving its *n*-th
    lease, then reconnects with backoff — a network partition that heals.
    The chunk must be re-issued and the rejoined host must get new work.

``REPRO_CHAOS_NET_DELAY_NTH_CHUNK`` / ``REPRO_CHAOS_NET_DELAY_SECONDS``
    The agent sleeps before executing its *n*-th lease.  With a delay
    longer than the lease TTL this manufactures a duplicate completion:
    the coordinator re-issues the chunk, then the delayed first execution
    finishes anyway — exactly one of the two results may be recorded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

CHAOS_NET_KILL_ENV = "REPRO_CHAOS_NET_KILL_NTH_CHUNK"
CHAOS_NET_SEVER_ENV = "REPRO_CHAOS_NET_SEVER_NTH_CHUNK"
CHAOS_NET_DELAY_ENV = "REPRO_CHAOS_NET_DELAY_NTH_CHUNK"
CHAOS_NET_DELAY_SECONDS_ENV = "REPRO_CHAOS_NET_DELAY_SECONDS"


def _env_int(name: str) -> int:
    try:
        return int(os.environ.get(name, "0") or 0)
    except ValueError:
        return 0


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


@dataclass(frozen=True)
class NetChaos:
    """Parsed network chaos configuration (0 = disabled)."""

    kill_nth: int = 0
    sever_nth: int = 0
    delay_nth: int = 0
    delay_seconds: float = 1.0

    @classmethod
    def from_env(cls) -> "NetChaos":
        return cls(
            kill_nth=_env_int(CHAOS_NET_KILL_ENV),
            sever_nth=_env_int(CHAOS_NET_SEVER_ENV),
            delay_nth=_env_int(CHAOS_NET_DELAY_ENV),
            delay_seconds=_env_float(CHAOS_NET_DELAY_SECONDS_ENV, 1.0),
        )

    @property
    def enabled(self) -> bool:
        return bool(self.kill_nth or self.sever_nth or self.delay_nth)
