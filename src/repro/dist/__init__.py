"""Distributed campaign dispatch: coordinator, worker agents, protocol.

Multi-host sharding rides entirely on the determinism substrate: chunks are
location-independent (per-experiment derived seeds, tick-sorted payloads,
merge-by-offset), so executing them on another host through
:class:`~repro.dist.coordinator.CoordinatorTransport` +
:class:`~repro.dist.worker.WorkerAgent` produces byte-identical
``ResultStore``s to a local run — under host death, partitions, duplicate
completions and coordinator crash/resume alike.

* :mod:`repro.dist.protocol` — length-prefixed framed messages (trusted
  cluster networks only; loopback by default);
* :mod:`repro.dist.coordinator` — lease dispatch with heartbeats, expiry,
  re-issue, late join and local fallback;
* :mod:`repro.dist.worker` — the per-host agent with capped-backoff
  reconnect and a local supervised pool;
* :mod:`repro.dist.chaos` — network-layer fault injection for tests.
"""

from repro.dist.chaos import NetChaos
from repro.dist.coordinator import CoordinatorStats, CoordinatorTransport
from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.dist.worker import WorkerAgent

__all__ = [
    "CoordinatorStats",
    "CoordinatorTransport",
    "MAX_FRAME_BYTES",
    "NetChaos",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "recv_frame",
    "send_frame",
    "WorkerAgent",
]
