"""Length-prefixed framed pickle protocol for distributed dispatch.

Every frame is a 4-byte big-endian payload length followed by a pickled
``dict`` with a ``type`` field.  Pickle is the right trade-off here because
the payloads *are* Python objects — chunk functions and initializers cross
the wire by reference, providers and campaign configs by value — exactly as
they already cross the supervised worker pipe on one host.

Security note: unpickling grants arbitrary code execution to anyone who can
write to the socket.  The protocol is for **trusted cluster networks only**
— the coordinator binds to loopback by default, and binding a routable
address is an explicit operator decision (same trust model as
``multiprocessing.connection``).

Framing rules:

* a clean EOF *between* frames reads as ``None`` (the peer hung up);
* an EOF *inside* a frame (torn header or body) raises
  :class:`ProtocolError` — the stream is unrecoverable and the connection
  must be dropped;
* frames above :data:`MAX_FRAME_BYTES` are rejected before allocation, so a
  corrupt length prefix cannot balloon memory.
"""

from __future__ import annotations

import pickle
import socket
import struct

from repro.errors import ReproError

PROTOCOL_VERSION = 1

#: 4-byte big-endian unsigned frame length.
HEADER = struct.Struct(">I")

#: Upper bound on one frame; campaign partials are far smaller.
MAX_FRAME_BYTES = 256 * 1024 * 1024

# Message types.  Worker → coordinator: hello, next, done, fail, heartbeat,
# metrics.  Coordinator → worker: welcome, work, wait, stand_down.
MSG_HELLO = "hello"
MSG_WELCOME = "welcome"
MSG_NEXT = "next"
MSG_WORK = "work"
MSG_WAIT = "wait"
MSG_DONE = "done"
MSG_FAIL = "fail"
MSG_HEARTBEAT = "heartbeat"
MSG_METRICS = "metrics"
MSG_STAND_DOWN = "stand_down"


class ProtocolError(ReproError):
    """The framed stream is torn or carries an undecodable frame."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize and send one framed message (blocking, whole frame)."""
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(blob)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    sock.sendall(HEADER.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes; short data means the peer hung up."""
    buffer = bytearray()
    while len(buffer) < size:
        piece = sock.recv(size - len(buffer))
        if not piece:
            break
        buffer += piece
    return bytes(buffer)


def recv_frame(sock: socket.socket):
    """Receive one framed message.

    Returns the decoded ``dict``, or ``None`` on a clean EOF between
    frames.  Raises :class:`ProtocolError` for a torn frame, an oversized
    length prefix, or a payload that is not a message dict.
    """
    header = _recv_exact(sock, HEADER.size)
    if not header:
        return None
    if len(header) < HEADER.size:
        raise ProtocolError("connection dropped inside a frame header")
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length)
    if len(body) < length:
        raise ProtocolError("connection dropped inside a frame body")
    try:
        message = pickle.loads(body)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc!r}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a typed message: {message!r}")
    return message
