"""Worker-host agent: executes leased chunks against a local engine.

A :class:`WorkerAgent` connects to a coordinator
(:class:`repro.dist.coordinator.CoordinatorTransport`), announces its
capacity, and pulls work: each ``work`` message carries the initializer and
provider the chunks need plus a batch of leases.  The agent localizes the
provider to its own artifact cache (``--cache-dir``), warms per-workload
state once per ``(initializer, program, provider)`` and reuses it across
rounds, then streams back one ``done``/``fail`` frame per lease — results
travel with the telemetry metric delta they produced, exactly like the
single-host supervisor pipe.

Robustness: the connection is heartbeated from a side thread; any socket or
protocol failure tears the connection down and the agent reconnects with
capped exponential backoff (a healed partition rejoins the run and is
granted fresh work).  ``jobs > 1`` executes each lease batch on the agent's
own supervised process pool, so a crashing experiment costs the agent a
pool worker, not the agent — the coordinator only ever sees a clean
``fail`` frame.  Network chaos knobs (:mod:`repro.dist.chaos`) inject dead
hosts, severed connections and delayed completions for the chaos suite.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import socket
import threading
import time
import traceback
from pathlib import Path
from typing import Optional

from repro.campaign.engine import RegistryProvider
from repro.campaign.supervisor import ChunkSupervisor, ChunkTask
from repro.dist.chaos import NetChaos
from repro.dist.protocol import (
    MSG_DONE,
    MSG_FAIL,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_METRICS,
    MSG_NEXT,
    MSG_STAND_DOWN,
    MSG_WAIT,
    MSG_WELCOME,
    MSG_WORK,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.telemetry import metrics as telemetry_metrics

#: ``run()`` exit codes, surfaced by ``repro worker``.
EXIT_OK = 0
EXIT_UNREACHABLE = 3


class _SeverConnection(Exception):
    """Internal: chaos asked for an abrupt disconnect (then reconnect)."""


class WorkerAgent:
    """One worker host's connection to the coordinator."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        name: Optional[str] = None,
        reconnect_attempts: int = 20,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
        start_method: Optional[str] = None,
        max_retries: int = 1,
        chaos: Optional[NetChaos] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.jobs = max(1, jobs)
        self.cache_dir = cache_dir
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.reconnect_attempts = max(0, reconnect_attempts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.max_retries = max_retries
        self.chaos = chaos if chaos is not None else NetChaos.from_env()
        self._stop = threading.Event()
        self._state = None
        self._state_key = None
        self._leases_received = 0

    def stop(self) -> None:
        """Ask a thread-hosted agent to wind down after its current lease."""
        self._stop.set()

    # -- connection lifecycle ------------------------------------------------------

    def run(self) -> int:
        """Serve until stood down.  Returns a ``repro worker`` exit code."""
        attempts = 0
        while not self._stop.is_set():
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=10.0
                )
            except OSError:
                attempts += 1
                if attempts > self.reconnect_attempts:
                    return EXIT_UNREACHABLE
                delay = min(
                    self.backoff_cap, self.backoff_base * (2 ** (attempts - 1))
                )
                if self._stop.wait(delay):
                    return EXIT_OK
                continue
            attempts = 0
            outcome = "retry"
            try:
                outcome = self._serve(sock)
            except _SeverConnection:
                # Chaos partition: drop the socket on the floor, no goodbye.
                outcome = "retry"
            except (ProtocolError, OSError):
                outcome = "retry"
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if outcome == "final" or self._stop.is_set():
                return EXIT_OK
        return EXIT_OK

    def _serve(self, sock: socket.socket) -> str:
        send_frame(
            sock,
            {
                "type": MSG_HELLO,
                "version": PROTOCOL_VERSION,
                "name": self.name,
                "pid": os.getpid(),
                "jobs": self.jobs,
            },
        )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != MSG_WELCOME:
            raise ProtocolError(f"expected welcome, got {welcome!r}")
        heartbeat_every = max(0.05, float(welcome.get("heartbeat_interval", 5.0)))
        # A stuck coordinator reads as a timeout → reconnect with backoff.
        sock.settimeout(max(10.0, 4 * heartbeat_every))
        send_lock = threading.Lock()
        hb_stop = threading.Event()

        def heartbeat() -> None:
            while not hb_stop.wait(heartbeat_every):
                try:
                    with send_lock:
                        send_frame(sock, {"type": MSG_HEARTBEAT})
                except (OSError, ProtocolError):
                    return

        hb_thread = threading.Thread(
            target=heartbeat, name="repro-worker-heartbeat", daemon=True
        )
        hb_thread.start()
        try:
            while not self._stop.is_set():
                with send_lock:
                    send_frame(sock, {"type": MSG_NEXT, "max": self.jobs})
                message = recv_frame(sock)
                if message is None:
                    return "retry"
                mtype = message.get("type")
                if mtype == MSG_WAIT:
                    if self._stop.wait(min(heartbeat_every, 0.25)):
                        return "final"
                elif mtype == MSG_WORK:
                    self._execute_round(sock, send_lock, message)
                elif mtype == MSG_STAND_DOWN:
                    # Final: the campaign is over.  Non-final (interrupt):
                    # back off and re-dial, in case the run is resumed.
                    return "final" if message.get("final") else "retry"
            return "final"
        finally:
            hb_stop.set()
            hb_thread.join(timeout=1.0)

    # -- work execution ------------------------------------------------------------

    def _localize(self, provider):
        if self.cache_dir is not None and isinstance(provider, RegistryProvider):
            return dataclasses.replace(provider, cache_dir=str(Path(self.cache_dir)))
        return provider

    def _warm_state(self, message: dict):
        initializer = message["initializer"]
        program = message["program"]
        provider = message["provider"]
        key = (initializer, program, provider)
        if self._state_key != key:
            self._state = initializer(self._localize(provider), program)
            self._state_key = key
        return self._state

    def _apply_chaos(self, entry: dict) -> None:
        self._leases_received += 1
        nth = self._leases_received
        if self.chaos.kill_nth and nth == self.chaos.kill_nth:
            os._exit(137)
        if self.chaos.sever_nth and nth == self.chaos.sever_nth:
            raise _SeverConnection()
        if self.chaos.delay_nth and nth == self.chaos.delay_nth:
            time.sleep(self.chaos.delay_seconds)

    def _execute_round(self, sock, send_lock, message: dict) -> None:
        entries = message.get("leases") or []
        if not entries:
            return
        if self.jobs > 1 and len(entries) > 1:
            self._execute_pooled(sock, send_lock, message, entries)
            return
        state = self._warm_state(message)
        for entry in entries:
            self._apply_chaos(entry)
            metrics_before = (
                telemetry_metrics.registry().snapshot()
                if telemetry_metrics.enabled()
                else None
            )
            try:
                body = entry["fn"](state, entry["payload"])
            except Exception:
                reply = {
                    "type": MSG_FAIL,
                    "lease": entry["lease"],
                    "chunk": entry["chunk"],
                    "count": entry["count"],
                    "error": traceback.format_exc(limit=16),
                }
            else:
                delta = (
                    telemetry_metrics.registry().snapshot_delta(metrics_before)
                    if metrics_before is not None
                    else None
                )
                reply = {
                    "type": MSG_DONE,
                    "lease": entry["lease"],
                    "chunk": entry["chunk"],
                    "count": entry["count"],
                    "body": body,
                    "metrics": delta,
                }
            with send_lock:
                send_frame(sock, reply)

    def _execute_pooled(self, sock, send_lock, message: dict, entries) -> None:
        """Run one lease batch on this host's supervised process pool."""
        for entry in entries:
            self._apply_chaos(entry)
        tasks = [
            ChunkTask(
                entry["chunk"],
                entry["fn"],
                entry["payload"],
                entry["count"],
                meta={"lease": entry["lease"]},
            )
            for entry in entries
        ]
        by_chunk = {entry["chunk"]: entry for entry in entries}
        metrics_before = (
            telemetry_metrics.registry().snapshot()
            if telemetry_metrics.enabled()
            else None
        )

        def on_chunk_done(task: ChunkTask, body) -> None:
            with send_lock:
                send_frame(
                    sock,
                    {
                        "type": MSG_DONE,
                        "lease": task.meta["lease"],
                        "chunk": task.chunk_id,
                        "count": task.size,
                        "body": body,
                        "metrics": None,
                    },
                )

        supervisor = ChunkSupervisor(
            jobs=min(self.jobs, len(tasks)),
            context=multiprocessing.get_context(self.start_method),
            initializer=message["initializer"],
            initargs=(self._localize(message["provider"]), message["program"]),
            max_retries=self.max_retries,
            quarantine=True,
        )
        outcome = supervisor.run(tasks, on_chunk_done=on_chunk_done)
        for failed in outcome.quarantined:
            entry = by_chunk.get(failed.task.chunk_id)
            if entry is None:
                continue
            with send_lock:
                send_frame(
                    sock,
                    {
                        "type": MSG_FAIL,
                        "lease": entry["lease"],
                        "chunk": entry["chunk"],
                        "count": entry["count"],
                        "error": failed.error,
                    },
                )
        for task in outcome.unfinished:
            entry = by_chunk.get(task.chunk_id)
            if entry is None:
                continue
            with send_lock:
                send_frame(
                    sock,
                    {
                        "type": MSG_FAIL,
                        "lease": entry["lease"],
                        "chunk": entry["chunk"],
                        "count": entry["count"],
                        "error": "worker pool degraded before the chunk ran",
                    },
                )
        if metrics_before is not None:
            delta = telemetry_metrics.registry().snapshot_delta(metrics_before)
            if delta:
                with send_lock:
                    send_frame(sock, {"type": MSG_METRICS, "delta": delta})
