"""Fig. 3: distribution of activated errors before crash (max-MBF = 30).

Paper findings checked here:

* the overwhelming majority of experiments activate at most 10 of the 30
  planned errors before the run ends (the paper reports ~99 % for
  inject-on-read and ~92 % for inject-on-write);
* inject-on-read activates fewer errors than inject-on-write (reads hit
  addresses more often, so crashes come sooner).
"""

from bench_config import bench_win_sizes, run_once

from repro.experiments import figure3

WIN_SIZES = bench_win_sizes(("w2", "w5", "w7"))


def test_figure3_activated_errors(benchmark, session, programs):
    result = run_once(benchmark, figure3, session, programs, win_size_specs=WIN_SIZES)
    print("\n" + result.text)

    read = result.data["inject-on-read"]
    write = result.data["inject-on-write"]

    for technique, entry in result.data.items():
        assert entry["histogram"], technique
        assert max(entry["histogram"]) <= 30, technique
        assert entry["mean"] >= 1.0, technique
        # The bulk of experiments activate few errors: the <=10 bucket holds
        # a clear majority (paper: 92-99 %).
        assert entry["fraction_at_most_10"] >= 0.6, technique

    # inject-on-read crashes sooner, so it activates no more errors than
    # inject-on-write on average (paper: 96 % vs 78 % within five errors).
    assert read["mean"] <= write["mean"] + 1.0
    assert read["fraction_at_most_10"] >= write["fraction_at_most_10"] - 0.05
