"""Compare fresh BENCH_*.json numbers against the committed baselines.

CI runs this after the benchmark gates::

    python benchmarks/compare_bench.py BENCH_interpreter.json BENCH_pruning.json

For every benchmark file named on the command line, each gated metric listed
in ``benchmarks/bench_baselines.json`` is compared against its committed
baseline; the run fails (exit code 1) when any metric regresses more than
the tolerance (10% by default, ``--tolerance`` to override).  A baseline
entry may also be an object ``{"value": x, "tolerance": y}`` to pin its own
per-metric tolerance — e.g. the telemetry-overhead ratio is gated at 2%
while the throughput speedups keep the looser machine-noise allowance.

Only *ratio* metrics (speedups, reduction factors) are compared — absolute
rates depend on the machine, ratios do not — so the committed baselines stay
valid across runner generations.  Improvements are reported but never fail
the check; refresh the baselines when a PR deliberately raises the floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "bench_baselines.json"


def load_baselines(path: Path = BASELINE_PATH) -> dict:
    data = json.loads(path.read_text())
    return {name: metrics for name, metrics in data.items() if not name.startswith("_")}


def compare_file(bench_path: Path, baselines: dict, tolerance: float) -> list:
    """Compare one benchmark file; returns a list of (line, regressed) rows."""
    fresh = json.loads(bench_path.read_text())
    rows = []
    for metric, baseline in sorted(baselines.items()):
        if isinstance(baseline, dict):
            allowed = float(baseline.get("tolerance", tolerance))
            baseline = float(baseline["value"])
        else:
            allowed = tolerance
        value = fresh.get(metric)
        if value is None:
            rows.append((f"{metric}: MISSING from {bench_path.name}", True))
            continue
        floor = baseline * (1.0 - allowed)
        regressed = value < floor
        change = (value / baseline - 1.0) * 100.0
        status = "REGRESSED" if regressed else "ok"
        rows.append(
            (
                f"{metric}: {value:.2f} vs baseline {baseline:.2f} "
                f"({change:+.1f}%, floor {floor:.2f}) [{status}]",
                regressed,
            )
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_files", nargs="+", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional regression below baseline (default 0.10)",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=BASELINE_PATH,
        help="baseline file (default benchmarks/bench_baselines.json)",
    )
    args = parser.parse_args(argv)
    baselines = load_baselines(args.baselines)
    failed = False
    for bench_path in args.bench_files:
        expected = baselines.get(bench_path.name)
        if expected is None:
            print(f"{bench_path.name}: no committed baselines, skipping")
            continue
        if not bench_path.exists():
            print(f"{bench_path}: benchmark output missing [REGRESSED]")
            failed = True
            continue
        print(f"{bench_path.name}:")
        for line, regressed in compare_file(bench_path, expected, args.tolerance):
            print(f"  {line}")
            failed = failed or regressed
    if failed:
        print("perf comparison FAILED: gated metric regressed >10% vs baseline")
        return 1
    print("perf comparison OK: all gated metrics within tolerance of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
