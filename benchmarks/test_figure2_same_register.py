"""Fig. 2: SDC % when flipping 1..30 bits of the same register (win-size = 0).

Paper findings checked here:

* for the majority of programs the single bit-flip SDC % is pessimistic or
  within a couple of percentage points of the multi-bit clusters;
* pushing max-MBF to 30 does not, on aggregate, increase the SDC percentage
  (the general trend is flat-to-declining as more bits of one register flip).
"""

from bench_config import bench_max_mbf_values, run_once

from repro.experiments import figure2

MAX_MBF = bench_max_mbf_values((2, 3, 10, 30))


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_figure2_same_register(benchmark, session, programs):
    result = run_once(benchmark, figure2, session, programs, max_mbf_values=MAX_MBF)
    print("\n" + result.text)

    for technique, per_program in result.data.items():
        singles = []
        at_thirty = []
        for program, entries in per_program.items():
            assert entries["single_bit"] is not None, program
            assert set(MAX_MBF) <= set(entries["by_max_mbf"]), program
            singles.append(entries["single_bit"])
            at_thirty.append(entries["by_max_mbf"][30])

        # Aggregate trend: 30 simultaneous flips of one register do not raise
        # the SDC percentage relative to the single-bit model (they mostly
        # raise the detection rate instead).
        assert _mean(at_thirty) <= _mean(singles) + 5.0, technique

        # Per program, the single-bit model is pessimistic or close for most
        # programs (the paper allows exceptions such as basicmath and CRC32).
        covered = sum(
            1
            for entries in per_program.values()
            if max(entries["by_max_mbf"].values()) <= entries["single_bit"] + 10.0
        )
        assert covered >= len(per_program) // 2, technique
