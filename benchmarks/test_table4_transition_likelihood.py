"""Table IV: likelihood of Transition I (Detection->SDC) and II (Benign->SDC).

Paper findings checked here:

* Transition I is rare — single-bit locations that were already detected
  almost never turn into SDCs under multi-bit injection;
* Transition II is common and highly variable (0-81 % in the paper), which
  is exactly why Benign locations cannot be pruned;
* on aggregate Transition II is at least as likely as Transition I, the
  observation behind the third pruning layer (RQ5).
"""

from bench_config import bench_win_sizes, run_once

from repro.experiments import table4

WIN_SIZES = bench_win_sizes(("w2", "w7"))


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_table4_transition_likelihood(benchmark, session, programs):
    result = run_once(
        benchmark,
        table4,
        session,
        programs,
        max_mbf_values=(2, 3),
        win_size_specs=WIN_SIZES,
        locations_per_class=30,
    )
    print("\n" + result.text)

    assert len(result.rows) == 2 * len(programs)
    transition1 = [row["transition1_percentage"] for row in result.rows]
    transition2 = [row["transition2_percentage"] for row in result.rows]

    for value in transition1 + transition2:
        assert 0.0 <= value <= 100.0

    # Transition I is rare: most entries in the paper's Table IV are below a
    # few percent; allow slack for the small replay samples used here.
    assert _mean(transition1) <= 30.0
    # Benign locations convert to SDCs far more often than Detection
    # locations do — the basis for pruning by first-injection location.
    assert _mean(transition2) >= _mean(transition1) - 5.0
