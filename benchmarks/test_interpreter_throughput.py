"""Interpreter throughput: repeated executions of one workload, per backend.

Measures runs/sec of every execution backend (``reference`` tree-walker,
``decoded`` decode-once driver, ``compiled`` transpiled Python) in three
instrumentation modes — ``bare`` (golden run), ``traced`` (golden-trace
collection) and ``hooked`` (no-op injection hooks installed) — and asserts
the decoded and compiled hot paths keep their headline speedups.  A second
section measures fault-injection experiment throughput on a *late-injection*
workload (first flip in the last quarter of the golden run, where the
skippable prefix is longest) with checkpoint fast-forwarding on vs. off.
The numbers are written to ``BENCH_interpreter.json`` at the repository
root, one section per backend, so the perf trajectory is tracked across PRs
(CI prints the file on every run).

Knobs:

``REPRO_BENCH_INTERPRETER_PROGRAM``
    Workload to execute repeatedly (default ``crc32``).
``REPRO_BENCH_INTERPRETER_SECONDS``
    Measurement window per configuration (default 0.4s).
``REPRO_BENCH_MIN_SPEEDUP``
    Required decoded-vs-reference bare speedup.  The default (1.5) is a
    flake-resistant sanity floor for plain test runs on loaded machines; the
    dedicated CI perf step enforces the real 2.0 bar (measured headroom is
    ~3x).
``REPRO_BENCH_MIN_COMPILED_SPEEDUP``
    Required compiled-vs-decoded bare (golden-run) speedup.  The default
    (2.0) is the flake-resistant floor; the CI perf step enforces the real
    3.0 bar (measured headroom is ~3.2x).
``REPRO_BENCH_MIN_FF_SPEEDUP``
    Required fast-forward-vs-scratch experiment throughput speedup on the
    late-injection workload (default 1.5; CI enforces the same bar, measured
    headroom is several x).
``REPRO_BENCH_MIN_WINDOWED_SPEEDUP``
    Required campaign-throughput speedup of the windowed compiled
    configuration over the always-hooked campaign baseline (decoded backend
    with fast-forward — the configuration campaigns ran in before windowed
    execution existed) on the late-injection workload.  Default 1.5 as the
    flake-resistant floor; the CI perf step enforces the real 2.0 bar
    (measured headroom is ~2.5x).
``REPRO_BENCH_MAX_SUPERVISED_OVERHEAD``
    Maximum tolerated throughput overhead of the supervised multiprocess
    engine (chunk supervisor, retry bookkeeping, heartbeat deadlines) over
    the plain ``multiprocessing.Pool`` dispatch it replaced, measured on an
    unfaulted late-injection error-space campaign.  Default 0.25 as the
    flake-resistant floor for loaded machines; the CI perf step enforces
    the real 0.05 (≤5%) bar.
``REPRO_BENCH_SUPERVISED_ERRORS`` / ``REPRO_BENCH_SUPERVISED_JOBS``
    Size knobs for the supervised-overhead campaign (defaults 384 errors,
    CPU count capped at 4).
``REPRO_BENCH_MAX_DIST_OVERHEAD``
    Maximum tolerated throughput overhead of the distributed coordinator
    path (lease dispatch over loopback sockets to two single-process
    ``repro worker`` agents) over the local supervised two-job pool on the
    same unfaulted error-space campaign.  Default 0.5 as the
    flake-resistant floor — the distributed path pays pickling, framing
    and lease bookkeeping per chunk; the CI perf step enforces the
    committed ``distributed_relative_throughput`` baseline instead.
``REPRO_BENCH_MAX_TELEMETRY_OVERHEAD``
    Maximum tolerated experiment-throughput overhead of enabled telemetry
    (metrics registry bumps on the VM segment path, per-phase span clocks)
    over a ``REPRO_TELEMETRY=0`` run of the same windowed compiled
    workload.  Default 0.10 as the flake-resistant floor for loaded
    machines; the CI perf step enforces the real 0.02 (≤2%) bar — the
    instrumentation is a single is-None check per segment when disabled
    and a handful of dict bumps per experiment when enabled.
"""

from __future__ import annotations

import gc
import itertools
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.injection.experiment import ExperimentRunner
from repro.injection.faultmodel import FaultSpec
from repro.programs import registry
from repro.vm import (
    CompiledInterpreter,
    Interpreter,
    ReferenceInterpreter,
    TraceCollector,
    compile_module,
)

PROGRAM = os.environ.get("REPRO_BENCH_INTERPRETER_PROGRAM", "crc32")
SECONDS = float(os.environ.get("REPRO_BENCH_INTERPRETER_SECONDS", "0.4"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))
MIN_COMPILED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_COMPILED_SPEEDUP", "2.0"))
MIN_FF_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FF_SPEEDUP", "1.5"))
MIN_WINDOWED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_WINDOWED_SPEEDUP", "1.5")
)
MAX_SUPERVISED_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_SUPERVISED_OVERHEAD", "0.25")
)
SUPERVISED_ERRORS = int(os.environ.get("REPRO_BENCH_SUPERVISED_ERRORS", "384"))
SUPERVISED_JOBS = int(
    os.environ.get("REPRO_BENCH_SUPERVISED_JOBS", str(min(os.cpu_count() or 1, 4)))
)
MAX_TELEMETRY_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_TELEMETRY_OVERHEAD", "0.10")
)
MAX_DIST_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_DIST_OVERHEAD", "0.5"))

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interpreter.json"

BACKENDS = ("reference", "decoded", "compiled")
MODES = ("bare", "traced", "hooked")


def _measure_once(make_interpreter, min_seconds: float) -> float:
    runs = 0
    started = time.perf_counter()
    while True:
        make_interpreter().run()
        runs += 1
        elapsed = time.perf_counter() - started
        if elapsed >= min_seconds:
            return runs / elapsed


def _runs_per_second(make_interpreter, min_seconds: float = SECONDS) -> float:
    make_interpreter().run()  # warm-up (and correctness sanity) run
    # Best of two windows: a load spike during one window cannot sink the
    # measured rate (the speedup assertion runs on shared CI machines).
    return max(
        _measure_once(make_interpreter, min_seconds),
        _measure_once(make_interpreter, min_seconds),
    )


def _noop_read_hook(dynamic_index, instruction, slot, register, value):
    return value


def _noop_write_hook(dynamic_index, instruction, register, value):
    return value


def _mode_kwargs(mode: str) -> dict:
    if mode == "traced":
        return {"trace_collector": TraceCollector()}
    if mode == "hooked":
        return {"read_hook": _noop_read_hook, "write_hook": _noop_write_hook}
    return {}


def _late_injection_specs(runner: ExperimentRunner, count: int = 16):
    """Inject-on-write specs whose first flip lies in the last golden quarter."""
    golden = runner.golden
    threshold = golden.dynamic_instruction_count * 3 // 4
    late = [
        record
        for record in golden.records_with_destination()
        if record.dynamic_index >= threshold
    ]
    stride = max(1, len(late) // count)
    return [
        FaultSpec(
            technique="inject-on-write",
            first_dynamic_index=record.dynamic_index,
            first_slot=None,
            max_mbf=1,
            win_size=0,
            seed=seed,
        )
        for seed, record in enumerate(late[::stride][:count])
    ]


def _experiments_per_second(runner: ExperimentRunner, specs, min_seconds: float = SECONDS) -> float:
    runner.run_spec(specs[0])  # warm-up (builds checkpoints / interpreter)

    def measure_once() -> float:
        cycle = itertools.cycle(specs)
        runs = 0
        started = time.perf_counter()
        while True:
            runner.run_spec(next(cycle))
            runs += 1
            elapsed = time.perf_counter() - started
            if elapsed >= min_seconds:
                return runs / elapsed

    return max(measure_once(), measure_once())


def test_interpreter_throughput():
    program = registry.build_program(PROGRAM)
    decoded = registry.get_decoded_program(PROGRAM)
    compiled = compile_module(program.module)
    entry = program.entry

    def make_interpreter(backend: str, mode: str):
        kwargs = _mode_kwargs(mode)
        if backend == "reference":
            return ReferenceInterpreter(program.module, entry=entry, **kwargs)
        if backend == "decoded":
            return Interpreter(decoded, entry=entry, **kwargs)
        return CompiledInterpreter(compiled, entry=entry, **kwargs)

    backends = {
        backend: {
            mode: _runs_per_second(
                lambda backend=backend, mode=mode: make_interpreter(backend, mode)
            )
            for mode in MODES
        }
        for backend in BACKENDS
    }
    speedup = backends["decoded"]["bare"] / backends["reference"]["bare"]
    compiled_speedup = backends["compiled"]["bare"] / backends["decoded"]["bare"]

    # Fault-injection experiment throughput: checkpoint fast-forward vs.
    # from-scratch prefix replay on a late-injection workload.
    ff_runner = ExperimentRunner(program, fast_forward=True)
    scratch_runner = ExperimentRunner(
        program, golden=ff_runner.golden, fast_forward=False
    )
    late_specs = _late_injection_specs(ff_runner)
    experiment_rates = {
        "fast_forward": _experiments_per_second(ff_runner, late_specs),
        "from_scratch": _experiments_per_second(scratch_runner, late_specs),
    }
    ff_speedup = experiment_rates["fast_forward"] / experiment_rates["from_scratch"]
    checkpoints = ff_runner._checkpoint_store()

    # Campaign-level metric: injection-windowed execution (bare sprint →
    # hooked window → bare tail) on the compiled backend vs. the always-
    # hooked baselines.  ``fast_forward`` above *is* the always-hooked
    # campaign baseline (decoded backend, hooks armed for the whole faulty
    # suffix — the configuration campaigns ran in before windowed execution
    # existed); ``always_hooked_compiled`` isolates the windowing win from
    # the backend win.
    windowed_runner = ExperimentRunner(
        program, golden=ff_runner.golden, backend="compiled", windowed=True
    )
    hooked_compiled_runner = ExperimentRunner(
        program, golden=ff_runner.golden, backend="compiled", windowed=False
    )
    experiment_rates["windowed"] = _experiments_per_second(windowed_runner, late_specs)
    experiment_rates["always_hooked_compiled"] = _experiments_per_second(
        hooked_compiled_runner, late_specs
    )
    windowed_speedup = experiment_rates["windowed"] / experiment_rates["fast_forward"]
    windowed_vs_hooked_compiled = (
        experiment_rates["windowed"] / experiment_rates["always_hooked_compiled"]
    )

    golden_length = registry.get_experiment_runner(PROGRAM).golden.dynamic_instruction_count
    payload = {
        "program": PROGRAM,
        "golden_dynamic_instructions": golden_length,
        "backends": {
            backend: {
                mode: {
                    "runs_per_second": round(rate, 2),
                    "dynamic_instructions_per_second": round(rate * golden_length),
                }
                for mode, rate in modes.items()
            }
            for backend, modes in backends.items()
        },
        "speedup_decoded_vs_reference": round(speedup, 2),
        "speedup_compiled_vs_decoded": round(compiled_speedup, 2),
        "late_injection_experiments_per_second": {
            key: round(rate, 2) for key, rate in experiment_rates.items()
        },
        "speedup_fast_forward": round(ff_speedup, 2),
        "speedup_windowed": round(windowed_speedup, 2),
        "speedup_windowed_vs_hooked_compiled": round(windowed_vs_hooked_compiled, 2),
        "checkpoints": {
            "count": len(checkpoints),
            "interval_ticks": checkpoints.interval,
        },
        "measurement_seconds_per_config": SECONDS,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"decoded interpreter is only {speedup:.2f}x the reference "
        f"({backends['decoded']['bare']:.1f} vs "
        f"{backends['reference']['bare']:.1f} runs/s); "
        f"expected at least {MIN_SPEEDUP}x"
    )
    assert compiled_speedup >= MIN_COMPILED_SPEEDUP, (
        f"compiled backend is only {compiled_speedup:.2f}x the decoded "
        f"golden run ({backends['compiled']['bare']:.1f} vs "
        f"{backends['decoded']['bare']:.1f} runs/s); "
        f"expected at least {MIN_COMPILED_SPEEDUP}x"
    )
    assert ff_speedup >= MIN_FF_SPEEDUP, (
        f"fast-forward is only {ff_speedup:.2f}x from-scratch execution "
        f"({experiment_rates['fast_forward']:.1f} vs "
        f"{experiment_rates['from_scratch']:.1f} experiments/s on the "
        f"late-injection workload); expected at least {MIN_FF_SPEEDUP}x"
    )
    assert windowed_speedup >= MIN_WINDOWED_SPEEDUP, (
        f"windowed compiled execution is only {windowed_speedup:.2f}x the "
        f"always-hooked campaign baseline "
        f"({experiment_rates['windowed']:.1f} vs "
        f"{experiment_rates['fast_forward']:.1f} experiments/s on the "
        f"late-injection workload); expected at least {MIN_WINDOWED_SPEEDUP}x"
    )
    assert windowed_vs_hooked_compiled > 1.0, (
        f"windowed execution is not faster than always-hooked on the same "
        f"(compiled) backend: {experiment_rates['windowed']:.1f} vs "
        f"{experiment_rates['always_hooked_compiled']:.1f} experiments/s"
    )


def _late_injection_errors(runner: ExperimentRunner, count: int):
    """Deterministic ``(dynamic_index, slot, bit)`` errors, late golden quarter."""
    golden = runner.golden
    threshold = golden.dynamic_instruction_count * 3 // 4
    late = [
        record
        for record in golden.records_with_destination()
        if record.dynamic_index >= threshold
    ]
    errors = []
    while len(errors) < count:
        record = late[(len(errors) * 7919) % len(late)]
        errors.append((record.dynamic_index, None, len(errors) % 32))
    return errors


def test_supervised_engine_overhead():
    """Supervised dispatch must stay within a few percent of the plain pool.

    Runs the same unfaulted late-injection error-space campaign through the
    supervised multiprocess engine (the default since fault-tolerant
    execution landed) and through the legacy ``multiprocessing.Pool`` path
    (``supervised=False``), end to end including worker start-up, and
    records the throughput ratio in ``BENCH_interpreter.json`` so the
    supervision tax is tracked across PRs.
    """
    from repro.campaign.engine import MultiprocessEngine, registry_provider

    runner = registry_provider(PROGRAM)  # compile + profile before forking
    errors = _late_injection_errors(runner, SUPERVISED_ERRORS)

    def errors_per_second(engine: MultiprocessEngine) -> "tuple[float, list]":
        best = 0.0
        outcomes = None
        for _ in range(2):  # best of two: load spikes cannot sink the ratio
            started = time.perf_counter()
            outcomes = engine.run_errors(
                PROGRAM, "inject-on-write", errors, provider=registry_provider
            )
            elapsed = time.perf_counter() - started
            best = max(best, len(errors) / elapsed)
        return best, outcomes

    supervised_rate, supervised_outcomes = errors_per_second(
        MultiprocessEngine(jobs=SUPERVISED_JOBS)
    )
    plain_rate, plain_outcomes = errors_per_second(
        MultiprocessEngine(jobs=SUPERVISED_JOBS, supervised=False)
    )
    assert supervised_outcomes == plain_outcomes  # same campaign, same bytes

    relative = supervised_rate / plain_rate
    try:
        payload = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        payload = {"program": PROGRAM}
    payload["supervised_engine_relative_throughput"] = round(relative, 2)
    payload["supervised_engine_errors_per_second"] = {
        "supervised": round(supervised_rate, 1),
        "plain_pool": round(plain_rate, 1),
        "errors": len(errors),
        "jobs": SUPERVISED_JOBS,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert relative >= 1.0 - MAX_SUPERVISED_OVERHEAD, (
        f"supervised engine reaches only {relative:.2f}x the plain pool "
        f"({supervised_rate:.1f} vs {plain_rate:.1f} errors/s on the "
        f"late-injection campaign); tolerated overhead is "
        f"{MAX_SUPERVISED_OVERHEAD:.0%}"
    )


def test_distributed_engine_overhead():
    """Distributed dispatch over loopback must stay near the local pool.

    Runs the same unfaulted late-injection error-space campaign through the
    local supervised two-job engine and through a loopback coordinator
    serving two single-process ``repro worker`` subprocess agents, asserts
    the outcomes are identical, and records the throughput ratio as
    ``distributed_relative_throughput`` in ``BENCH_interpreter.json`` so
    the lease/framing tax is tracked across PRs.
    """
    from repro.campaign.engine import MultiprocessEngine, registry_provider
    from repro.dist import CoordinatorTransport

    runner = registry_provider(PROGRAM)  # compile + profile before dispatch
    errors = _late_injection_errors(runner, SUPERVISED_ERRORS)

    def errors_per_second(engine: MultiprocessEngine) -> "tuple[float, list]":
        best = 0.0
        outcomes = None
        for _ in range(2):  # best of two: load spikes cannot sink the ratio
            started = time.perf_counter()
            outcomes = engine.run_errors(
                PROGRAM, "inject-on-write", errors, provider=registry_provider
            )
            elapsed = time.perf_counter() - started
            best = max(best, len(errors) / elapsed)
        return best, outcomes

    local_rate, local_outcomes = errors_per_second(MultiprocessEngine(jobs=2))

    transport = CoordinatorTransport("127.0.0.1", 0)
    engine = MultiprocessEngine(jobs=2, transport=transport)
    host, port = transport.address
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", f"{host}:{port}"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for _ in range(2)
    ]
    try:
        deadline = time.monotonic() + 60.0
        while len(transport.connected_hosts) < 2:
            assert time.monotonic() < deadline, "worker agents never attached"
            time.sleep(0.05)
        dist_rate, dist_outcomes = errors_per_second(engine)
    finally:
        engine.close()
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    assert dist_outcomes == local_outcomes  # same campaign, same bytes

    relative = dist_rate / local_rate
    try:
        payload = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        payload = {"program": PROGRAM}
    payload["distributed_relative_throughput"] = round(relative, 2)
    payload["distributed_errors_per_second"] = {
        "distributed": round(dist_rate, 1),
        "local_pool": round(local_rate, 1),
        "errors": len(errors),
        "hosts": 2,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert relative >= 1.0 - MAX_DIST_OVERHEAD, (
        f"distributed dispatch reaches only {relative:.2f}x the local pool "
        f"({dist_rate:.1f} vs {local_rate:.1f} errors/s on the "
        f"late-injection campaign); tolerated overhead is "
        f"{MAX_DIST_OVERHEAD:.0%}"
    )


def test_telemetry_overhead():
    """Enabled telemetry must not tax the experiment hot path.

    Measures the windowed compiled late-injection workload (the fastest
    production configuration, where any per-segment bookkeeping is most
    visible) with the metrics registry enabled and disabled, and records
    the on/off throughput ratio in ``BENCH_interpreter.json``.  The runner
    is rebuilt after each toggle so its ``PhaseClock`` and the VM's module
    counters re-bind to the new state, exactly as a fresh process would.
    """
    from repro.telemetry import metrics as telemetry_metrics
    from repro.vm import interpreter as interpreter_module

    program = registry.build_program(PROGRAM)
    golden = ExperimentRunner(program).golden  # shared profile for both modes
    previous = telemetry_metrics.enabled()
    modes = (("disabled", False), ("enabled", True))
    runners = {}
    rates = {label: 0.0 for label, _ in modes}
    specs = None

    def batch_rate(runner, repeats: int) -> float:
        started = time.perf_counter()
        for _ in range(repeats):
            for spec in specs:
                runner.run_spec(spec)
        return (repeats * len(specs)) / (time.perf_counter() - started)

    try:
        for label, flag in modes:
            telemetry_metrics.set_enabled(flag)
            interpreter_module.refresh_vm_counters()
            runners[label] = ExperimentRunner(
                program, golden=golden, backend="compiled", windowed=True
            )
            specs = specs or _late_injection_specs(runners[label])
            for spec in specs:  # warm-up: checkpoints, codegen, allocator
                runners[label].run_spec(spec)
        # Size batches to ~50ms each, then alternate the two modes over many
        # short rounds (flipping which goes first each round) keeping each
        # mode's best batch: load spikes and drift hit both sides equally
        # instead of masquerading as instrumentation overhead, and the
        # best-of filter discards them entirely.  GC stays off during the
        # measured batches so collection pauses don't land on one side.
        probe = batch_rate(runners["disabled"], 1)
        repeats = max(1, int(probe * 0.05 / len(specs)))
        rounds = max(10, int(4.0 * SECONDS / 0.05))
        gc.disable()
        try:
            for round_index in range(rounds):
                ordered = modes if round_index % 2 == 0 else tuple(reversed(modes))
                for label, flag in ordered:
                    telemetry_metrics.set_enabled(flag)
                    interpreter_module.refresh_vm_counters()
                    rates[label] = max(
                        rates[label], batch_rate(runners[label], repeats)
                    )
        finally:
            gc.enable()
    finally:
        telemetry_metrics.set_enabled(previous)
        interpreter_module.refresh_vm_counters()

    relative = rates["enabled"] / rates["disabled"]
    try:
        payload = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        payload = {"program": PROGRAM}
    payload["telemetry_relative_throughput"] = round(relative, 2)
    payload["telemetry_experiments_per_second"] = {
        label: round(rate, 1) for label, rate in rates.items()
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert relative >= 1.0 - MAX_TELEMETRY_OVERHEAD, (
        f"telemetry-enabled throughput is only {relative:.2f}x the disabled "
        f"run ({rates['enabled']:.1f} vs {rates['disabled']:.1f} "
        f"experiments/s on the windowed compiled workload); tolerated "
        f"overhead is {MAX_TELEMETRY_OVERHEAD:.0%}"
    )
