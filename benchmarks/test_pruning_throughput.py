"""Error-space pruning benchmark: reduction, misprediction and plan-time gates.

Builds the pruned plan of crc32's full inject-on-read single-bit error space
(377,914 errors), asserts the pruning's headline guarantees, and writes
``BENCH_pruning.json`` at the repository root so CI tracks the trajectory:

* the plan's **reduction factor** (errors in the space / experiments the
  exact pruned campaign executes) must clear ``REPRO_BENCH_MIN_REDUCTION``
  (CI enforces 3.0; measured headroom is ~4.3x);
* **cold planning** (def-use extraction + inference + assembly from
  scratch, nothing cached) must beat the PR-4 object-based baseline of
  ``REPRO_BENCH_PLAN_BASELINE`` seconds (47.11 on the reference box) by at
  least ``REPRO_BENCH_MIN_PLAN_SPEEDUP`` (CI enforces 3.0; the columnar
  pipeline measures ~3.8x);
* **warm planning** (the same plan fetched from the persistent artifact
  cache by a fresh session) must finish within
  ``REPRO_BENCH_MAX_WARM_PLAN`` seconds (CI enforces 1.0) and be
  bit-identical to the cold plan;
* a seeded **audit sample** drawn from all three outcome sources — errors
  settled by static inference, class representatives, and inherited
  (non-representative) class members — is executed for real, and every
  prediction is compared with the actual outcome.  The misprediction rate
  over the inherited members must stay within
  ``REPRO_BENCH_MAX_MISPREDICTION`` (CI enforces 0.01); statically inferred
  outcomes must match *exactly* (they are proofs, not predictions).

During development the full 377,914-error unpruned campaign was executed
once and the pruned plan's weighted counts matched it exactly (SDC 189,012,
detected 131,717, benign 56,385, hang 800) at 4.29x fewer experiments;
set ``REPRO_BENCH_PRUNING_FULL=1`` to repeat that end-to-end equality check
(~35 minutes single-process).

Knobs:

``REPRO_BENCH_PRUNING_PROGRAM``     workload (default ``crc32``)
``REPRO_BENCH_PRUNING_SAMPLES``     audit sample size (default 600)
``REPRO_BENCH_MIN_REDUCTION``       reduction-factor gate (default 3.0)
``REPRO_BENCH_MAX_MISPREDICTION``   inherited-member gate (default 0.01)
``REPRO_BENCH_PLAN_BASELINE``       PR-4 cold plan seconds (default 47.11)
``REPRO_BENCH_MIN_PLAN_SPEEDUP``    cold plan speedup gate (default 3.0)
``REPRO_BENCH_MAX_WARM_PLAN``       warm plan seconds gate (default 1.0)
``REPRO_BENCH_PRUNING_FULL``        run the unpruned space too (default off)
"""

from __future__ import annotations

import gc
import json
import os
import random
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro import artifacts
from repro.campaign.engine import run_error_batch
from repro.errorspace import build_defuse_index, build_pruned_plan, enumerate_error_space
from repro.injection.outcome import OutcomeCounts
from repro.programs.registry import get_experiment_runner

PROGRAM = os.environ.get("REPRO_BENCH_PRUNING_PROGRAM", "crc32")
SAMPLES = int(os.environ.get("REPRO_BENCH_PRUNING_SAMPLES", "600"))
MIN_REDUCTION = float(os.environ.get("REPRO_BENCH_MIN_REDUCTION", "3.0"))
MAX_MISPREDICTION = float(os.environ.get("REPRO_BENCH_MAX_MISPREDICTION", "0.01"))
PLAN_BASELINE = float(os.environ.get("REPRO_BENCH_PLAN_BASELINE", "47.11"))
MIN_PLAN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_PLAN_SPEEDUP", "3.0"))
MAX_WARM_PLAN = float(os.environ.get("REPRO_BENCH_MAX_WARM_PLAN", "1.0"))
FULL = os.environ.get("REPRO_BENCH_PRUNING_FULL", "") == "1"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pruning.json"


@contextmanager
def quiesced_gc():
    """Time planning without paying for the surrounding test session's heap.

    When the whole suite runs before this benchmark, hundreds of thousands
    of long-lived objects (cached runners for all 15 workloads, decoded
    programs, traces) sit in the GC generations; the planner's allocation
    rate then triggers collections that scan that unrelated heap and inflate
    the measurement ~30%.  Freezing the pre-existing heap and disabling the
    collector for the timed region measures the pipeline itself — planning
    allocates no reference cycles, so refcounting reclaims everything.
    """
    gc.collect()
    gc.freeze()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.unfreeze()
        gc.collect()


def test_pruning_reduction_and_misprediction():
    runner = get_experiment_runner(PROGRAM)
    space = enumerate_error_space(runner.golden, "inject-on-read")

    # -- cold planning: derive everything from scratch (matches how the PR-4
    # baseline of PLAN_BASELINE seconds was measured: def-use extraction +
    # inference + plan assembly inside the timer, golden trace outside).
    with quiesced_gc():
        plan_started = time.perf_counter()
        index = build_defuse_index(
            runner.program, runner.golden, args=runner.args, decoded=runner.decoded
        )
        plan = build_pruned_plan(space, index)
        plan_seconds = time.perf_counter() - plan_started
    plan_speedup = PLAN_BASELINE / plan_seconds if plan_seconds > 0 else float("inf")
    assert plan_speedup >= MIN_PLAN_SPEEDUP, (
        f"cold planning took {plan_seconds:.2f}s — only {plan_speedup:.2f}x over "
        f"the {PLAN_BASELINE}s object-based baseline, below the "
        f"{MIN_PLAN_SPEEDUP}x gate"
    )

    # -- warm planning: a fresh cache round-trip must be near-free and exact.
    with tempfile.TemporaryDirectory(prefix="repro-bench-artifacts-") as cache_dir:
        cache = artifacts.ArtifactCache(cache_dir)
        key = artifacts.plan_key(
            cache, runner.program.module, runner.program.entry, runner.args,
            "inject-on-read", True,
        )
        assert artifacts.store_plan(cache, key, plan)
        with quiesced_gc():
            warm_started = time.perf_counter()
            warm_plan = artifacts.load_plan(cache, key)
            warm_seconds = time.perf_counter() - warm_started
    assert warm_plan is not None
    assert plan.matches(warm_plan), "cached plan diverged from cold build"
    assert warm_seconds <= MAX_WARM_PLAN, (
        f"warm (artifact-cache) planning took {warm_seconds:.3f}s, above the "
        f"{MAX_WARM_PLAN}s gate"
    )

    assert plan.covered_errors == plan.total_errors == space.size
    reduction = plan.reduction_factor
    assert reduction >= MIN_REDUCTION, (
        f"pruned plan executes {plan.executed_experiments} of {plan.total_errors} "
        f"errors ({reduction:.2f}x), below the {MIN_REDUCTION}x gate"
    )

    # -- audit sample: predictions vs. real executions -----------------------------
    rng = random.Random(2017)
    inherited_population = plan.non_representative_members()
    inferred_population = sorted(plan.inferred_outcomes)
    class_by_id = {cls.class_id: cls for cls in plan.classes}

    inferred_share = min(len(inferred_population), SAMPLES // 3)
    inherited_share = min(len(inherited_population), SAMPLES - inferred_share)
    inferred_sample = rng.sample(inferred_population, inferred_share)
    inherited_sample = rng.sample(inherited_population, inherited_share)

    # Representatives needed to predict the inherited members' outcomes.
    needed_classes = sorted({class_id for _member, class_id in inherited_sample})
    representative_errors = [
        (
            class_by_id[class_id].representative.dynamic_index,
            class_by_id[class_id].representative.slot,
            class_by_id[class_id].representative.bit,
        )
        for class_id in needed_classes
    ]

    run_started = time.perf_counter()
    representative_outcomes = dict(
        zip(needed_classes, run_error_batch(runner, "inject-on-read", representative_errors))
    )
    inferred_actual = run_error_batch(runner, "inject-on-read", inferred_sample)
    inherited_actual = run_error_batch(
        runner, "inject-on-read", [member for member, _class_id in inherited_sample]
    )
    run_seconds = time.perf_counter() - run_started
    executed = len(representative_errors) + len(inferred_sample) + len(inherited_sample)

    inference_wrong = sum(
        1
        for key, actual in zip(inferred_sample, inferred_actual)
        if plan.inferred_outcomes[key] is not actual
    )
    assert inference_wrong == 0, (
        f"{inference_wrong}/{len(inferred_sample)} statically inferred outcomes "
        "disagree with real executions — inference must be exact"
    )

    mispredicted = sum(
        1
        for (member, class_id), actual in zip(inherited_sample, inherited_actual)
        if representative_outcomes[class_id] is not actual
    )
    misprediction_rate = mispredicted / len(inherited_sample) if inherited_sample else 0.0
    assert misprediction_rate <= MAX_MISPREDICTION, (
        f"{mispredicted}/{len(inherited_sample)} inherited class members "
        f"mispredicted ({100.0 * misprediction_rate:.2f}%), above the "
        f"{100.0 * MAX_MISPREDICTION:.2f}% gate"
    )

    payload = {
        "program": PROGRAM,
        "technique": "inject-on-read",
        "error_space": plan.total_errors,
        "candidate_locations": plan.candidate_count,
        "inferred_errors": plan.inferred_errors,
        "equivalence_classes": plan.executed_experiments,
        "reduction_factor": round(reduction, 3),
        "plan_seconds": round(plan_seconds, 2),
        "plan_baseline_seconds": PLAN_BASELINE,
        "plan_speedup_vs_baseline": round(plan_speedup, 2),
        "plan_seconds_warm": round(warm_seconds, 3),
        "audit": {
            "experiments_executed": executed,
            "wall_clock_seconds": round(run_seconds, 2),
            "experiments_per_second": round(executed / run_seconds, 1)
            if run_seconds > 0
            else None,
            "inferred_sampled": len(inferred_sample),
            "inferred_wrong": inference_wrong,
            "inherited_sampled": len(inherited_sample),
            "inherited_mispredicted": mispredicted,
            "misprediction_rate": round(misprediction_rate, 5),
        },
    }

    if FULL:
        full_started = time.perf_counter()
        errors = [(e.dynamic_index, e.slot, e.bit) for e in space.iter_errors()]
        truth = run_error_batch(runner, "inject-on-read", errors)
        truth_counts = OutcomeCounts()
        truth_counts.update(truth)
        planned = plan.exact_experiments()
        outcomes = run_error_batch(
            runner,
            "inject-on-read",
            [(p.error.dynamic_index, p.error.slot, p.error.bit) for p in planned],
        )
        weighted = plan.expand_counts(
            {planned[i].class_id: outcomes[i] for i in range(len(planned))}, planned
        )
        assert weighted.as_dict() == truth_counts.as_dict(), (
            "pruned weighted counts diverge from the unpruned exhaustive campaign"
        )
        payload["full_equality"] = {
            "outcomes": truth_counts.as_dict(),
            "wall_clock_seconds": round(time.perf_counter() - full_started, 2),
        }

    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULT_PATH.name}: reduction {reduction:.2f}x, "
          f"cold plan {plan_seconds:.1f}s ({plan_speedup:.1f}x vs {PLAN_BASELINE}s "
          f"baseline), warm plan {warm_seconds * 1000:.0f}ms, "
          f"misprediction {100.0 * misprediction_rate:.3f}% "
          f"({executed} audit experiments in {run_seconds:.0f}s)")
