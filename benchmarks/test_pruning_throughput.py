"""Error-space pruning benchmark: reduction factor and misprediction gate.

Builds the pruned plan of crc32's full inject-on-read single-bit error space
(377,914 errors), asserts the pruning's headline guarantees, and writes
``BENCH_pruning.json`` at the repository root so CI tracks the trajectory:

* the plan's **reduction factor** (errors in the space / experiments the
  exact pruned campaign executes) must clear ``REPRO_BENCH_MIN_REDUCTION``
  (CI enforces 3.0; measured headroom is ~4.3x);
* a seeded **audit sample** drawn from all three outcome sources — errors
  settled by static inference, class representatives, and inherited
  (non-representative) class members — is executed for real, and every
  prediction is compared with the actual outcome.  The misprediction rate
  over the inherited members must stay within
  ``REPRO_BENCH_MAX_MISPREDICTION`` (CI enforces 0.01); statically inferred
  outcomes must match *exactly* (they are proofs, not predictions).

During development the full 377,914-error unpruned campaign was executed
once and the pruned plan's weighted counts matched it exactly (SDC 189,012,
detected 131,717, benign 56,385, hang 800) at 4.29x fewer experiments;
set ``REPRO_BENCH_PRUNING_FULL=1`` to repeat that end-to-end equality check
(~35 minutes single-process).

Knobs:

``REPRO_BENCH_PRUNING_PROGRAM``     workload (default ``crc32``)
``REPRO_BENCH_PRUNING_SAMPLES``     audit sample size (default 600)
``REPRO_BENCH_MIN_REDUCTION``       reduction-factor gate (default 3.0)
``REPRO_BENCH_MAX_MISPREDICTION``   inherited-member gate (default 0.01)
``REPRO_BENCH_PRUNING_FULL``        run the unpruned space too (default off)
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.campaign.engine import run_error_batch
from repro.errorspace import build_pruned_plan, enumerate_error_space
from repro.injection.outcome import OutcomeCounts
from repro.programs.registry import get_defuse_index, get_experiment_runner

PROGRAM = os.environ.get("REPRO_BENCH_PRUNING_PROGRAM", "crc32")
SAMPLES = int(os.environ.get("REPRO_BENCH_PRUNING_SAMPLES", "600"))
MIN_REDUCTION = float(os.environ.get("REPRO_BENCH_MIN_REDUCTION", "3.0"))
MAX_MISPREDICTION = float(os.environ.get("REPRO_BENCH_MAX_MISPREDICTION", "0.01"))
FULL = os.environ.get("REPRO_BENCH_PRUNING_FULL", "") == "1"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pruning.json"


def test_pruning_reduction_and_misprediction():
    runner = get_experiment_runner(PROGRAM)
    space = enumerate_error_space(runner.golden, "inject-on-read")

    plan_started = time.perf_counter()
    plan = build_pruned_plan(space, get_defuse_index(PROGRAM))
    plan_seconds = time.perf_counter() - plan_started

    assert plan.covered_errors == plan.total_errors == space.size
    reduction = plan.reduction_factor
    assert reduction >= MIN_REDUCTION, (
        f"pruned plan executes {plan.executed_experiments} of {plan.total_errors} "
        f"errors ({reduction:.2f}x), below the {MIN_REDUCTION}x gate"
    )

    # -- audit sample: predictions vs. real executions -----------------------------
    rng = random.Random(2017)
    inherited_population = plan.non_representative_members()
    inferred_population = sorted(plan.inferred_outcomes)
    class_by_id = {cls.class_id: cls for cls in plan.classes}

    inferred_share = min(len(inferred_population), SAMPLES // 3)
    inherited_share = min(len(inherited_population), SAMPLES - inferred_share)
    inferred_sample = rng.sample(inferred_population, inferred_share)
    inherited_sample = rng.sample(inherited_population, inherited_share)

    # Representatives needed to predict the inherited members' outcomes.
    needed_classes = sorted({class_id for _member, class_id in inherited_sample})
    representative_errors = [
        (
            class_by_id[class_id].representative.dynamic_index,
            class_by_id[class_id].representative.slot,
            class_by_id[class_id].representative.bit,
        )
        for class_id in needed_classes
    ]

    run_started = time.perf_counter()
    representative_outcomes = dict(
        zip(needed_classes, run_error_batch(runner, "inject-on-read", representative_errors))
    )
    inferred_actual = run_error_batch(runner, "inject-on-read", inferred_sample)
    inherited_actual = run_error_batch(
        runner, "inject-on-read", [member for member, _class_id in inherited_sample]
    )
    run_seconds = time.perf_counter() - run_started
    executed = len(representative_errors) + len(inferred_sample) + len(inherited_sample)

    inference_wrong = sum(
        1
        for key, actual in zip(inferred_sample, inferred_actual)
        if plan.inferred_outcomes[key] is not actual
    )
    assert inference_wrong == 0, (
        f"{inference_wrong}/{len(inferred_sample)} statically inferred outcomes "
        "disagree with real executions — inference must be exact"
    )

    mispredicted = sum(
        1
        for (member, class_id), actual in zip(inherited_sample, inherited_actual)
        if representative_outcomes[class_id] is not actual
    )
    misprediction_rate = mispredicted / len(inherited_sample) if inherited_sample else 0.0
    assert misprediction_rate <= MAX_MISPREDICTION, (
        f"{mispredicted}/{len(inherited_sample)} inherited class members "
        f"mispredicted ({100.0 * misprediction_rate:.2f}%), above the "
        f"{100.0 * MAX_MISPREDICTION:.2f}% gate"
    )

    payload = {
        "program": PROGRAM,
        "technique": "inject-on-read",
        "error_space": plan.total_errors,
        "candidate_locations": plan.candidate_count,
        "inferred_errors": plan.inferred_errors,
        "equivalence_classes": plan.executed_experiments,
        "reduction_factor": round(reduction, 3),
        "plan_seconds": round(plan_seconds, 2),
        "audit": {
            "experiments_executed": executed,
            "wall_clock_seconds": round(run_seconds, 2),
            "experiments_per_second": round(executed / run_seconds, 1)
            if run_seconds > 0
            else None,
            "inferred_sampled": len(inferred_sample),
            "inferred_wrong": inference_wrong,
            "inherited_sampled": len(inherited_sample),
            "inherited_mispredicted": mispredicted,
            "misprediction_rate": round(misprediction_rate, 5),
        },
    }

    if FULL:
        full_started = time.perf_counter()
        errors = [(e.dynamic_index, e.slot, e.bit) for e in space.iter_errors()]
        truth = run_error_batch(runner, "inject-on-read", errors)
        truth_counts = OutcomeCounts()
        truth_counts.update(truth)
        planned = plan.exact_experiments()
        outcomes = run_error_batch(
            runner,
            "inject-on-read",
            [(p.error.dynamic_index, p.error.slot, p.error.bit) for p in planned],
        )
        weighted = plan.expand_counts(
            {planned[i].class_id: outcomes[i] for i in range(len(planned))}, planned
        )
        assert weighted.as_dict() == truth_counts.as_dict(), (
            "pruned weighted counts diverge from the unpruned exhaustive campaign"
        )
        payload["full_equality"] = {
            "outcomes": truth_counts.as_dict(),
            "wall_clock_seconds": round(time.perf_counter() - full_started, 2),
        }

    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULT_PATH.name}: reduction {reduction:.2f}x, "
          f"misprediction {100.0 * misprediction_rate:.3f}% "
          f"({executed} audit experiments in {run_seconds:.0f}s)")
