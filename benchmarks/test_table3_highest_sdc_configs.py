"""Table III: configurations with the highest SDC % among multi-bit campaigns.

Paper findings checked here:

* for every program/technique pair there is a well-defined peak
  configuration;
* the peak is reached at a small max-MBF (2-3 in the paper; we allow up to
  the small end of the grid) for the majority of pairs;
* the margin by which the peak exceeds the single-bit SDC % stays modest for
  inject-on-read (the paper reports about two percentage points at most).
"""

from bench_config import bench_max_mbf_values, bench_win_sizes, run_once

from repro.experiments import table3

MAX_MBF = bench_max_mbf_values((2, 3, 10, 30))
WIN_SIZES = bench_win_sizes(("w2", "w7"))


def test_table3_highest_sdc_configs(benchmark, session, programs):
    result = run_once(
        benchmark,
        table3,
        session,
        programs,
        max_mbf_values=MAX_MBF,
        win_size_specs=WIN_SIZES,
    )
    print("\n" + result.text)

    assert len(result.rows) == 2 * len(programs)

    small_peaks = sum(1 for row in result.rows if row["max_mbf"] <= 3)
    assert small_peaks >= len(result.rows) // 2

    read_rows = [row for row in result.rows if row["technique"] == "inject-on-read"]
    # Inject-on-read margins over the single-bit model stay small (paper: ~2pp);
    # allow slack for the reduced campaign sizes used here.
    for row in read_rows:
        margin = row["sdc_percentage"] - row["single_bit_sdc_percentage"]
        assert margin <= 15.0, row
