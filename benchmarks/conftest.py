"""Pytest fixtures for the benchmark harness.

The configuration knobs (program subset, experiments per campaign, the
``REPRO_BENCH_*`` environment variables) live in :mod:`bench_config`; this
conftest only wires them into session-scoped fixtures shared by every
benchmark.
"""

from __future__ import annotations

from typing import List

import pytest

from bench_config import bench_experiments, bench_programs

from repro.campaign import ExperimentScale
from repro.experiments import ExperimentSession


@pytest.fixture(scope="session")
def session() -> ExperimentSession:
    """One experiment session (campaign runner + result store) per bench run."""
    import os

    scale = ExperimentScale("bench", experiments_per_campaign=bench_experiments())
    cache = os.environ.get("REPRO_BENCH_CACHE")
    return ExperimentSession(scale=scale, cache_path=cache)


@pytest.fixture(scope="session")
def programs() -> List[str]:
    """The benchmark program subset under study (see bench_config)."""
    return bench_programs()
