"""Headline aggregates of §IV / §V and the three pruning layers.

Paper findings checked here:

* the single bit-flip model is pessimistic for the large majority of
  multi-bit campaigns (the paper reports 92 %; we require a clear majority
  at reproduction scale);
* bounding max-MBF at 10 covers the overwhelming majority of activated-error
  counts (pruning layer 1);
* a small max-MBF reaches the SDC peak for most program/win-size pairs
  (pruning layer 2);
* a substantial fraction of single-bit locations (those ending in SDC or
  Detection) can be excluded from multi-bit campaigns (pruning layer 3,
  27-100 % in the paper).
"""

from bench_config import bench_max_mbf_values, bench_win_sizes, run_once

from repro.analysis.comparison import (
    fraction_of_pairs_peaking_within,
    single_bit_pessimistic_fraction,
)
from repro.analysis.pruning import pruning_summary
from repro.campaign.plan import (
    multi_register_campaigns,
    same_register_campaigns,
    single_bit_campaigns,
)

MAX_MBF = bench_max_mbf_values((2, 3, 10, 30))
WIN_SIZES = bench_win_sizes(("w2", "w7"))


def _run_grid(session, programs):
    configs = single_bit_campaigns(programs, session.scale)
    configs += same_register_campaigns(programs, session.scale, max_mbf_values=MAX_MBF)
    configs += multi_register_campaigns(
        programs, session.scale, max_mbf_values=MAX_MBF, win_size_specs=WIN_SIZES
    )
    return session.ensure(configs)


def test_headline_aggregates(benchmark, session, programs):
    store = run_once(benchmark, _run_grid, session, programs)

    pessimistic = single_bit_pessimistic_fraction(store, tolerance_pp=1.0)
    print(f"\nsingle-bit model pessimistic for {100.0 * pessimistic:.1f}% of multi-bit campaigns "
          f"(paper: 92%)")
    assert pessimistic >= 0.5

    for technique in ("inject-on-read", "inject-on-write"):
        summary = pruning_summary(store, technique)
        low, high = summary.prunable_location_range
        print(
            f"{technique}: layer1 max-MBF bound = {summary.recommended_max_mbf}, "
            f"layer2 peak max-MBF = {summary.pessimistic_max_mbf}, "
            f"layer2 single-bit-sufficient programs = {len(summary.single_bit_sufficient)}, "
            f"layer3 prunable locations = {100 * low:.0f}%-{100 * high:.0f}%"
        )
        # Layer 1: activated errors are overwhelmingly small counts.
        assert summary.recommended_max_mbf <= 30
        # Layer 2: a small number of errors (<=3) reaches the SDC peak for the
        # majority of program/win-size pairs (the paper reports ~95%; at the
        # reduced campaign sizes used here the argmax is noisier, so require a
        # clear majority instead of the paper's near-totality).
        peak_within_three = fraction_of_pairs_peaking_within(store, technique, 3)
        print(f"{technique}: SDC peak reached with <=3 errors for "
              f"{100 * peak_within_three:.0f}% of program/win-size pairs")
        assert peak_within_three >= 0.5
        # Layer 3: a substantial share of locations can be pruned everywhere.
        assert low >= 0.10
        assert high <= 1.0
        # At least one program should already be covered by the single-bit
        # model (the paper finds this for the majority of programs).
        assert len(summary.single_bit_sufficient) >= 1
