"""Fig. 4: SDC % for multi-register injections with inject-on-read.

Paper findings checked here:

* for most programs the single bit-flip model gives a pessimistic (or very
  close) SDC estimate compared with every multi-bit cluster;
* increasing max-MBF does not increase the SDC % on aggregate — the trend
  over the number of injected errors is declining.
"""

from bench_config import bench_max_mbf_values, bench_win_sizes, run_once

from repro.experiments import figure4

MAX_MBF = bench_max_mbf_values((2, 3, 10, 30))
WIN_SIZES = bench_win_sizes(("w2", "w7"))


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_figure4_multi_register_read(benchmark, session, programs):
    result = run_once(
        benchmark,
        figure4,
        session,
        programs,
        max_mbf_values=MAX_MBF,
        win_size_specs=WIN_SIZES,
    )
    print("\n" + result.text)

    per_program = result.data["inject-on-read"]
    assert set(per_program) == set(programs)

    singles = []
    small_mbf_peaks = []
    large_mbf_means = []
    covered = 0
    for program, entries in per_program.items():
        assert entries["single_bit"] is not None
        clusters = entries["by_cluster"]
        assert clusters, program
        singles.append(entries["single_bit"])
        small = [v for key, v in clusters.items() if key.startswith(("mbf=2,", "mbf=3,"))]
        large = [v for key, v in clusters.items() if key.startswith("mbf=30,")]
        if small:
            small_mbf_peaks.append(max(small))
        if large:
            large_mbf_means.append(_mean(large))
        if max(clusters.values()) <= entries["single_bit"] + 10.0:
            covered += 1

    # RQ2 (read): the single-bit model is pessimistic/close for most programs.
    assert covered >= len(per_program) // 2

    # Declining trend: many simultaneous errors crash the program more often,
    # so SDC% at max-MBF=30 does not exceed the small-max-MBF peak on average.
    if small_mbf_peaks and large_mbf_means:
        assert _mean(large_mbf_means) <= _mean(small_mbf_peaks) + 5.0
