"""Throughput benchmark: experiments/sec for serial vs. multiprocess engines.

Records an experiments-per-second figure in ``extra_info`` for each engine so
future optimisation PRs have a perf trajectory to beat.  Size knobs:

``REPRO_BENCH_ENGINE_EXPERIMENTS``
    Experiments in the measured campaign (default 240).
``REPRO_BENCH_ENGINE_JOBS``
    Worker-pool size for the multiprocess engine (default: CPU count, capped
    at 4 to keep CI machines honest).
"""

from __future__ import annotations

import os

from bench_config import run_once

from repro.campaign import CampaignConfig
from repro.campaign.engine import MultiprocessEngine, SerialEngine, registry_provider
from repro.injection.faultmodel import win_size_by_index

PROGRAM = "crc32"
EXPERIMENTS = int(os.environ.get("REPRO_BENCH_ENGINE_EXPERIMENTS", "240"))
JOBS = int(os.environ.get("REPRO_BENCH_ENGINE_JOBS", str(min(os.cpu_count() or 1, 4))))


def engine_config() -> CampaignConfig:
    return CampaignConfig(
        program=PROGRAM,
        technique="inject-on-write",
        max_mbf=3,
        win_size=win_size_by_index("w3"),
        experiments=EXPERIMENTS,
    )


def record_throughput(benchmark, result) -> None:
    assert result.experiments == EXPERIMENTS
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["experiments"] = EXPERIMENTS
    benchmark.extra_info["experiments_per_second"] = round(EXPERIMENTS / mean, 1)


def test_serial_engine_throughput(benchmark):
    registry_provider(PROGRAM)  # compile + profile outside the timed region
    engine = SerialEngine()
    result = run_once(benchmark, engine.run, engine_config(), provider=registry_provider)
    record_throughput(benchmark, result)


def test_multiprocess_engine_throughput(benchmark):
    registry_provider(PROGRAM)  # forked workers inherit the compiled workload
    engine = MultiprocessEngine(jobs=JOBS)
    benchmark.extra_info["jobs"] = JOBS
    result = run_once(benchmark, engine.run, engine_config(), provider=registry_provider)
    record_throughput(benchmark, result)
