"""Configuration knobs and helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Campaign sizes
are a fraction of the paper's 10,000-experiment campaigns so the whole
harness finishes in minutes; the environment variables below scale it up.

Environment knobs
-----------------
``REPRO_BENCH_PROGRAMS``
    Comma-separated program names (default: a 6-program subset covering both
    suites and both ends of the detection spectrum).
``REPRO_BENCH_EXPERIMENTS``
    Experiments per campaign (default 60).
``REPRO_BENCH_FULL``
    Set to ``1`` to use all 15 programs and the full Table I parameter grid
    (the paper-shaped sweep; expect hours, not minutes).
``REPRO_BENCH_CACHE``
    Path to a JSON file used to cache campaign results across invocations.
"""

from __future__ import annotations

import os
from typing import List, Tuple

from repro.campaign import ExperimentScale
from repro.experiments import ExperimentSession
from repro.injection.faultmodel import MAX_MBF_VALUES, WIN_SIZE_SPECS, win_size_by_index
from repro.programs.registry import all_program_names

#: Default program subset: two data-dominated programs the paper singles out
#: (basicmath, crc32), two address-heavy ones (dijkstra, bfs), and two mixed
#: ones (qsort, spmv).
DEFAULT_PROGRAMS = ["basicmath", "qsort", "crc32", "dijkstra", "bfs", "spmv"]

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_programs() -> List[str]:
    names = os.environ.get("REPRO_BENCH_PROGRAMS")
    if names:
        return [name.strip() for name in names.split(",") if name.strip()]
    if FULL:
        return all_program_names()
    return list(DEFAULT_PROGRAMS)


def bench_experiments() -> int:
    return int(os.environ.get("REPRO_BENCH_EXPERIMENTS", "60"))


def bench_max_mbf_values(default: Tuple[int, ...]) -> Tuple[int, ...]:
    if FULL:
        return MAX_MBF_VALUES
    return default


def bench_win_sizes(default_indices: Tuple[str, ...]):
    if FULL:
        return [spec for spec in WIN_SIZE_SPECS if spec.is_random or spec.value != 0]
    return [win_size_by_index(index) for index in default_indices]


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive figure/table generation exactly once under timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
