"""Fig. 5: SDC % for multi-register injections with inject-on-write.

Paper findings checked here:

* a small number of errors (max-MBF of 2 or 3) is enough to reach the peak
  SDC % for the large majority of program/win-size pairs;
* the declining trend with growing max-MBF holds for this technique too;
* programs with low single-bit detection (basicmath, CRC32 analogues) are
  the ones where multi-bit injections can exceed the single-bit SDC %.
"""

from bench_config import bench_max_mbf_values, bench_win_sizes, run_once

from repro.experiments import figure5

MAX_MBF = bench_max_mbf_values((2, 3, 10, 30))
WIN_SIZES = bench_win_sizes(("w2", "w7"))


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_figure5_multi_register_write(benchmark, session, programs):
    result = run_once(
        benchmark,
        figure5,
        session,
        programs,
        max_mbf_values=MAX_MBF,
        win_size_specs=WIN_SIZES,
    )
    print("\n" + result.text)

    per_program = result.data["inject-on-write"]
    assert set(per_program) == set(programs)

    peak_at_small_mbf = 0
    total_with_clusters = 0
    small_peaks = []
    large_means = []
    for program, entries in per_program.items():
        clusters = entries["by_cluster"]
        assert clusters, program
        total_with_clusters += 1
        best_key = max(clusters, key=clusters.get)
        if best_key.startswith(("mbf=2,", "mbf=3,")):
            peak_at_small_mbf += 1
        small = [v for key, v in clusters.items() if key.startswith(("mbf=2,", "mbf=3,"))]
        large = [v for key, v in clusters.items() if key.startswith("mbf=30,")]
        if small:
            small_peaks.append(max(small))
        if large:
            large_means.append(_mean(large))

    # RQ3 (write): the SDC peak is reached with 2-3 errors for most programs
    # (the paper reports 95% of program/win-size pairs).
    assert peak_at_small_mbf >= total_with_clusters // 2

    # Declining trend with many errors.
    if small_peaks and large_means:
        assert _mean(large_means) <= _mean(small_peaks) + 5.0
