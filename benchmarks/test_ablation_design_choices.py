"""Ablations of reproduction-specific design choices (DESIGN.md §1).

Two knobs of this reproduction do not exist in the paper and therefore need
evidence that they do not distort the results:

* the **hang watchdog multiplier** — LLFI uses a wall-clock timeout 1-2
  orders of magnitude above the fault-free runtime; the VM uses a dynamic-
  instruction budget.  The outcome classification must be stable when the
  multiplier changes, i.e. hangs must be genuinely rare rather than an
  artefact of a tight budget;
* the **win-size grid subset** used by the default benchmarks — the paper's
  RQ4 finding is that the window size matters little under inject-on-read
  but does matter under inject-on-write; the SDC spread across windows is
  reported here for both techniques.
"""

import random

from bench_config import run_once

from repro.analysis.comparison import win_size_sensitivity
from repro.campaign.plan import multi_register_campaigns
from repro.injection import INJECT_ON_WRITE, OutcomeCounts
from repro.injection.experiment import ExperimentRunner
from repro.injection.faultmodel import win_size_by_index
from repro.programs.registry import build_program

ABLATION_PROGRAM = "crc32"
EXPERIMENTS = 120


def _campaign_with_watchdog(multiplier: int) -> OutcomeCounts:
    """One single-bit inject-on-write campaign under a given watchdog."""
    runner = ExperimentRunner(build_program(ABLATION_PROGRAM), watchdog_multiplier=multiplier)
    rng = random.Random(2017)
    counts = OutcomeCounts()
    for _ in range(EXPERIMENTS):
        result = runner.run_sampled(INJECT_ON_WRITE, max_mbf=1, win_size=0, rng=rng)
        counts.add(result.outcome)
    return counts


def test_ablation_watchdog_multiplier(benchmark):
    """The outcome split must not depend on the watchdog budget."""

    def run_both():
        return _campaign_with_watchdog(4), _campaign_with_watchdog(16)

    tight, generous = run_once(benchmark, run_both)
    print(
        f"\nwatchdog x4:  SDC={100 * tight.sdc_fraction:.1f}% "
        f"detection={100 * tight.detection_fraction:.1f}% "
        f"benign={100 * tight.benign_fraction:.1f}%"
    )
    print(
        f"watchdog x16: SDC={100 * generous.sdc_fraction:.1f}% "
        f"detection={100 * generous.detection_fraction:.1f}% "
        f"benign={100 * generous.benign_fraction:.1f}%"
    )
    # Same seed, same fault specs: only runs that hit the watchdog can change
    # classification, and those are rare.  The SDC estimate must be stable.
    assert abs(tight.sdc_fraction - generous.sdc_fraction) <= 0.10
    assert abs(tight.benign_fraction - generous.benign_fraction) <= 0.10


def test_ablation_window_sensitivity(benchmark, session, programs):
    """RQ4: report the SDC spread across win-size values per technique.

    The paper finds the window size matters little under inject-on-read but
    visibly under inject-on-write.  At reproduction scale the spreads are
    noisy, so this ablation asserts only sanity bounds and prints the spreads
    for EXPERIMENTS.md.
    """
    windows = [win_size_by_index(index) for index in ("w2", "w5", "w7")]

    def run_grid():
        configs = multi_register_campaigns(
            programs, session.scale, max_mbf_values=(2,), win_size_specs=windows
        )
        return session.ensure(configs)

    store = run_once(benchmark, run_grid)
    for technique in ("inject-on-read", "inject-on-write"):
        spreads = []
        for program in programs:
            spread = win_size_sensitivity(store, program, technique, max_mbf=2)
            spreads.append(spread)
            print(f"{technique:16s} {program:12s} SDC spread across windows: {spread:5.1f} pp")
        mean_spread = sum(spreads) / len(spreads)
        print(f"{technique:16s} mean spread: {mean_spread:.1f} pp")
        # Sanity: the spread is bounded by the confidence interval scale at
        # this campaign size — window choice never swings SDC% by half the
        # range, matching the paper's "does not matter much" for read and
        # "matters, but within a modest band" for write.
        assert 0.0 <= mean_spread <= 50.0
