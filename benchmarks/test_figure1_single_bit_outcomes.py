"""Fig. 1: outcome classification of single bit-flip campaigns.

Paper findings checked here (shape, not absolute numbers):

* every experiment falls into exactly one of the five outcome categories;
* the SDC percentage under inject-on-write is, on aggregate, at least as
  high as under inject-on-read (Fig. 1's headline observation);
* Hang and NoOutput stay a small minority of outcomes.
"""

from bench_config import run_once

from repro.experiments import figure1


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_figure1_single_bit_outcomes(benchmark, session, programs):
    result = run_once(benchmark, figure1, session, programs)
    print("\n" + result.text)

    read = result.data["inject-on-read"]
    write = result.data["inject-on-write"]
    assert set(read) == set(programs) and set(write) == set(programs)

    for technique_data in (read, write):
        for program, entries in technique_data.items():
            total = entries["benign"] + entries["detection"] + entries["sdc"]
            assert abs(total - 100.0) < 1e-6, program
            # Hangs and missing output are rare (the paper reports < 0.3 %);
            # allow generous slack at small campaign sizes.
            assert entries["hang"] + entries["no_output"] <= 25.0, program

    mean_read_sdc = _mean(entries["sdc"] for entries in read.values())
    mean_write_sdc = _mean(entries["sdc"] for entries in write.values())
    # Fig. 1: inject-on-write produces a higher SDC percentage overall.
    assert mean_write_sdc >= mean_read_sdc - 2.0, (mean_read_sdc, mean_write_sdc)

    # The paper explains the SDC/Detection split by the address/data mix:
    # programs dominated by data computation (basicmath, CRC32) should show
    # less detection than pointer-chasing programs (dijkstra, bfs).
    for technique_data in (read, write):
        data_programs = [p for p in ("basicmath", "crc32") if p in technique_data]
        address_programs = [p for p in ("dijkstra", "bfs") if p in technique_data]
        if data_programs and address_programs:
            data_detection = _mean(technique_data[p]["detection"] for p in data_programs)
            address_detection = _mean(technique_data[p]["detection"] for p in address_programs)
            assert address_detection >= data_detection - 5.0
