"""Table II: benchmark programs and their candidate instruction counts."""

from bench_config import run_once

from repro.experiments import table2
from repro.programs.registry import all_program_names


def test_table2_candidate_counts(benchmark):
    # Table II covers all 15 programs regardless of the bench subset — it only
    # needs the (cheap) fault-free profiling runs.
    result = run_once(benchmark, table2, all_program_names())
    print("\n" + result.text)

    assert len(result.rows) == 15
    suites = {row["suite"] for row in result.rows}
    assert suites == {"mibench", "parboil"}

    for row in result.rows:
        # The paper's Table II observation: inject-on-read has more candidate
        # instructions than inject-on-write because stores and branches have
        # source registers but no destination register.
        assert row["inject_on_read_candidates"] >= row["inject_on_write_candidates"]
        assert row["inject_on_write_candidates"] > 0
