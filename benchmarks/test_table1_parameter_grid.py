"""Table I: the max-MBF and win-size values of the error-space clustering."""

from bench_config import run_once

from repro.experiments import table1
from repro.injection.faultmodel import MAX_MBF_VALUES, WIN_SIZE_SPECS


def test_table1_parameter_grid(benchmark):
    result = run_once(benchmark, table1)
    print("\n" + result.text)

    # The grid must match Table I of the paper exactly (it is configuration,
    # not measurement): ten max-MBF values m1-m10 and nine win-size specs.
    max_mbf_rows = [row for row in result.rows if row["kind"] == "max-MBF"]
    win_rows = [row for row in result.rows if row["kind"] == "win-size"]
    assert [int(row["value"]) for row in max_mbf_rows] == list(MAX_MBF_VALUES)
    assert [row["value"] for row in win_rows] == [spec.label for spec in WIN_SIZE_SPECS]
    # 2 techniques x (1 single-bit + 10 x 9 multi-bit clusters) = 182 campaigns
    # per program, the number the paper reports.
    assert 2 * (1 + len(MAX_MBF_VALUES) * len(WIN_SIZE_SPECS)) == 182
