#!/usr/bin/env python3
"""The paper's three error-space pruning layers, applied to real campaigns.

Demonstrates §IV's pruning workflow on two contrasting workloads:

* **Layer 1** — run max-MBF = 30 campaigns and look at how many errors are
  actually activated before the program crashes (RQ1 / Fig. 3); the small
  activation counts justify bounding max-MBF.
* **Layer 2** — find programs where the single bit-flip model already gives a
  pessimistic SDC estimate, and the small max-MBF bound that reaches the SDC
  peak everywhere else (RQ2/RQ3).
* **Layer 3** — compute the fraction of single-bit locations (those that led
  to SDC or Detection) that multi-bit campaigns can skip entirely (RQ5).

Run with::

    python examples/error_space_pruning.py
"""

from __future__ import annotations

from repro.analysis.activation import activation_distribution
from repro.analysis.pruning import pruning_summary
from repro.campaign import ExperimentScale
from repro.campaign.plan import (
    multi_register_campaigns,
    same_register_campaigns,
    single_bit_campaigns,
)
from repro.experiments import ExperimentSession
from repro.injection.faultmodel import win_size_by_index

PROGRAMS = ["crc32", "dijkstra"]
WIN_SIZES = tuple(win_size_by_index(index) for index in ("w2", "w5", "w7"))


def run_campaigns(session: ExperimentSession):
    configs = single_bit_campaigns(PROGRAMS, session.scale)
    configs += multi_register_campaigns(
        PROGRAMS, session.scale, max_mbf_values=(2, 3, 30), win_size_specs=WIN_SIZES
    )
    configs += same_register_campaigns(PROGRAMS, session.scale, max_mbf_values=(30,))
    return session.ensure(configs)


def main() -> None:
    session = ExperimentSession(scale=ExperimentScale("example", experiments_per_campaign=100))
    print(f"running campaigns for {', '.join(PROGRAMS)} ...")
    store = run_campaigns(session)

    for technique in ("inject-on-read", "inject-on-write"):
        print(f"\n=== {technique} ===")

        distribution = activation_distribution(store, technique, max_mbf=30)
        print("layer 1 — activated errors when 30 flips are planned:")
        for label, percentage in distribution.bucket_percentages().items():
            print(f"    {label:>5s} activated: {percentage:5.1f}% of experiments")
        print(f"    mean activated errors: {distribution.mean_activated():.1f}")

        summary = pruning_summary(store, technique)
        print("layer 2 — pessimistic parameter selection:")
        print(f"    max-MBF bound covering 95% of activations: {summary.recommended_max_mbf}")
        print(f"    single-bit model already pessimistic for: "
              f"{', '.join(summary.single_bit_sufficient) or '(none)'}")
        print(f"    max-MBF needed to reach the SDC peak elsewhere: {summary.pessimistic_max_mbf}")

        print("layer 3 — prunable first-injection locations:")
        for program, fraction in summary.prunable_location_fraction.items():
            print(f"    {program:12s} {100.0 * fraction:5.1f}% of single-bit locations "
                  f"(SDC or Detection) can be skipped")


if __name__ == "__main__":
    main()
