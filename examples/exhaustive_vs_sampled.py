#!/usr/bin/env python3
"""Exhaustive vs. pruned vs. paper-style sampled campaigns on crc32.

The paper estimates SDC rates by *sampling* a few thousand experiments per
campaign and quoting confidence intervals (§III-E).  The error-space
subsystem (:mod:`repro.errorspace`) makes the opposite trade: enumerate the
*entire* single-bit error space, statically infer every error whose outcome
is provable from the golden run, group the rest into def-use equivalence
classes, and execute one representative per class.  The result is not an
estimate — it is the exact outcome distribution of the full space — at a
fraction of the experiments.

This example compares, on crc32 / inject-on-read:

1. the paper-style sampled estimate (1,000 random experiments + Wilson CI);
2. a budgeted pruned campaign (1,000 weighted-sampled representatives);
3. the exact pruned campaign (every class representative — pass ``--exact``;
   a few minutes of runtime) whose weighted counts reproduce the unpruned
   exhaustive campaign exactly, with a validation sample measuring the
   class-inheritance misprediction rate.

Run with::

    python examples/exhaustive_vs_sampled.py           # 1 + 2 (about a minute)
    python examples/exhaustive_vs_sampled.py --exact   # adds 3
"""

from __future__ import annotations

import sys
import time

from repro.campaign import CampaignConfig, SerialEngine
from repro.campaign.engine import registry_provider
from repro.errorspace import enumerate_error_space
from repro.experiments import ExperimentSession
from repro.injection.faultmodel import win_size_by_index
from repro.programs.registry import get_experiment_runner

PROGRAM = "crc32"
TECHNIQUE = "inject-on-read"
SAMPLED_EXPERIMENTS = 1_000


def sdc_line(label: str, counts, extra: str = "") -> None:
    sdc = 100.0 * counts.sdc_fraction
    print(f"  {label:34s} SDC {sdc:6.3f}%  ({counts.total} errors covered){extra}")


def main() -> int:
    exact = "--exact" in sys.argv[1:]

    runner = get_experiment_runner(PROGRAM)
    space = enumerate_error_space(runner.golden, TECHNIQUE)
    print(f"{PROGRAM} / {TECHNIQUE}")
    print(
        f"  error space: {space.size} single-bit errors "
        f"({space.candidate_count} candidate locations)"
    )

    # 1. The paper's approach: a sampled campaign with a confidence interval.
    config = CampaignConfig(
        program=PROGRAM,
        technique=TECHNIQUE,
        max_mbf=1,
        win_size=win_size_by_index("w1"),
        experiments=SAMPLED_EXPERIMENTS,
    )
    started = time.perf_counter()
    sampled = SerialEngine().run(config, provider=registry_provider, keep_records=False)
    sampled_seconds = time.perf_counter() - started
    estimate = sampled.sdc_estimate()
    print(f"\npaper-style sampling ({SAMPLED_EXPERIMENTS} experiments, {sampled_seconds:.0f}s)")
    print(
        f"  SDC estimate {100.0 * estimate.point:6.3f}%  "
        f"95% CI [{100.0 * estimate.lower:.3f}%, {100.0 * estimate.upper:.3f}%]"
    )

    # 2./3. The error-space subsystem: plan once, then execute representatives.
    session = ExperimentSession()
    started = time.perf_counter()
    plan = session.pruned_plan(PROGRAM, TECHNIQUE)
    plan_seconds = time.perf_counter() - started
    print(f"\npruned plan (built in {plan_seconds:.0f}s)")
    print(f"  statically inferred : {plan.inferred_errors} errors (zero executions)")
    print(f"  equivalence classes : {len(plan.classes)} representatives to run")
    print(f"  reduction factor    : {plan.reduction_factor:.2f}x fewer experiments")

    started = time.perf_counter()
    budgeted = session.run_exhaustive(
        PROGRAM, TECHNIQUE, mode="budgeted", budget=SAMPLED_EXPERIMENTS
    )
    budgeted_seconds = time.perf_counter() - started
    print(f"\nbudgeted pruned campaign ({SAMPLED_EXPERIMENTS} representatives, "
          f"{budgeted_seconds:.0f}s)")
    sdc_line("weighted estimate over full space", budgeted.outcome_counts)

    if exact:
        started = time.perf_counter()
        result = session.run_exhaustive(PROGRAM, TECHNIQUE, mode="pruned", validate=0.005)
        exact_seconds = time.perf_counter() - started
        print(f"\nexact pruned campaign ({result.executed_experiments} experiments, "
              f"{exact_seconds:.0f}s)")
        sdc_line(
            "exact outcome proportions",
            result.outcome_counts,
            extra=f"  [{result.reduction_factor:.2f}x fewer experiments]",
        )
        print(
            f"  validation: {result.validation_mispredicted}/"
            f"{result.validation_sampled} sampled class members mispredicted "
            f"({100.0 * result.misprediction_rate:.2f}%)"
        )
    else:
        print("\n(pass --exact to run every class representative and reproduce the")
        print(" unpruned exhaustive outcome proportions exactly)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
