#!/usr/bin/env python3
"""Single vs multiple bit-flip SDC comparison on real benchmark programs.

Reproduces the heart of the paper's RQ2/RQ3 analysis on a handful of
Table II workloads: run the single bit-flip campaign plus a grid of
multi-bit campaigns for both injection techniques, then report

* each program's SDC % under the single-bit model,
* the multi-bit configuration with the highest SDC % (Table III style),
* whether the single-bit model is pessimistic for that program, and
* the number of bit flips needed to reach the SDC peak.

Run with::

    python examples/single_vs_multi_bitflip.py            # default programs
    python examples/single_vs_multi_bitflip.py crc32 sha  # choose programs
"""

from __future__ import annotations

import sys

from repro.analysis.comparison import (
    highest_sdc_configurations,
    single_bit_is_pessimistic,
    single_bit_pessimistic_fraction,
)
from repro.analysis.reporting import format_table
from repro.campaign import ExperimentScale
from repro.campaign.plan import multi_register_campaigns, single_bit_campaigns
from repro.experiments import ExperimentSession
from repro.injection.faultmodel import win_size_by_index

DEFAULT_PROGRAMS = ["basicmath", "crc32", "dijkstra", "bfs"]
#: A compact but representative parameter grid: the paper's small max-MBF
#: values plus the probe value 30, and one small / one medium / one large
#: dynamic window.
MAX_MBF_VALUES = (2, 3, 5, 30)
WIN_SIZES = tuple(win_size_by_index(index) for index in ("w2", "w5", "w9"))


def main() -> None:
    programs = sys.argv[1:] or DEFAULT_PROGRAMS
    session = ExperimentSession(scale=ExperimentScale("example", experiments_per_campaign=120))
    print(f"programs: {', '.join(programs)}")
    print("running campaigns (single-bit + "
          f"{len(MAX_MBF_VALUES) * len(WIN_SIZES)} multi-bit clusters per technique) ...")

    configs = single_bit_campaigns(programs, session.scale)
    configs += multi_register_campaigns(
        programs, session.scale, max_mbf_values=MAX_MBF_VALUES, win_size_specs=WIN_SIZES
    )
    store = session.ensure(configs)

    rows = []
    for entry in highest_sdc_configurations(store, programs=programs):
        pessimistic = single_bit_is_pessimistic(store, entry.program, entry.technique)
        rows.append(
            [
                entry.program,
                entry.technique,
                entry.single_bit_sdc_percentage,
                entry.sdc_percentage,
                entry.max_mbf,
                entry.win_size_label,
                "yes" if pessimistic else "NO",
            ]
        )
    print()
    print(
        format_table(
            [
                "program",
                "technique",
                "single-bit SDC%",
                "peak multi-bit SDC%",
                "peak max-MBF",
                "peak win-size",
                "single-bit pessimistic?",
            ],
            rows,
        )
    )
    fraction = single_bit_pessimistic_fraction(store)
    print(
        f"\nacross all campaigns here, the single bit-flip model is pessimistic for "
        f"{100.0 * fraction:.0f}% of multi-bit campaigns "
        f"(the paper reports 92% over its full 2700-campaign study)"
    )


if __name__ == "__main__":
    main()
