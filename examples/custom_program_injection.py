#!/usr/bin/env python3
"""Bring your own program: assess the error resilience of new code.

The paper's methodology is not tied to MiBench/Parboil — any program compiled
to the IR can be studied.  This example shows the workflow a user would
follow for their own kernel:

1. write the kernel in the restricted-Python frontend language (here: a
   fixed-point PID controller step loop and a checksummed lookup table);
2. compare the SDC sensitivity of two *variants* of the same kernel — one
   unprotected, one with a simple software check (duplicated computation and
   comparison, in the spirit of the SWIFT-style mechanisms the paper cites);
3. report how much the software check improves error resilience under both
   single-bit and multi-bit fault models.

Run with::

    python examples/custom_program_injection.py
"""

from __future__ import annotations

import random

from repro import ExperimentRunner, INJECT_ON_WRITE, OutcomeCounts
from repro.frontend import compile_program

UNPROTECTED = '''
def controller_step(error: "i64", previous: "i64", integral: "i64", gains: "i32*") -> "i64":
    proportional = gains[0] * error
    integral_term = gains[1] * integral
    derivative = gains[2] * (error - previous)
    return (proportional + integral_term + derivative) // 16

def main() -> "i64":
    integral = 0
    previous = 0
    checksum = 0
    for step in range(40):
        error = setpoints[step % 8] - (step * 3) % 11
        integral += error
        command = controller_step(error, previous, integral, gains)
        previous = error
        checksum += command * (step + 1)
    output(checksum)
    return checksum
'''

# The protected variant recomputes the control command a second time and
# aborts when the two copies disagree (duplication-with-comparison).  Faults
# that would have produced an SDC now mostly end up as detections.
PROTECTED = '''
def controller_step(error: "i64", previous: "i64", integral: "i64", gains: "i32*") -> "i64":
    proportional = gains[0] * error
    integral_term = gains[1] * integral
    derivative = gains[2] * (error - previous)
    return (proportional + integral_term + derivative) // 16

def main() -> "i64":
    integral = 0
    previous = 0
    checksum = 0
    for step in range(40):
        error = setpoints[step % 8] - (step * 3) % 11
        integral += error
        command = controller_step(error, previous, integral, gains)
        shadow = controller_step(error, previous, integral, gains)
        if command != shadow:
            abort()
        previous = error
        checksum += command * (step + 1)
    output(checksum)
    return checksum
'''

GLOBALS = {
    "setpoints": ("i32", [12, -4, 7, 0, 22, -9, 3, 15]),
    "gains": ("i32", [12, 3, 7]),
}


def measure(name: str, source: str, max_mbf: int, experiments: int = 250) -> OutcomeCounts:
    program = compile_program(name, [source], GLOBALS)
    runner = ExperimentRunner(program)
    rng = random.Random(7)
    counts = OutcomeCounts()
    for _ in range(experiments):
        result = runner.run_sampled(INJECT_ON_WRITE, max_mbf=max_mbf, win_size=1, rng=rng)
        counts.add(result.outcome)
    return counts


def main() -> None:
    print("fault model: inject-on-write, win-size = 1")
    print(f"{'variant':14s} {'max-MBF':>8s} {'SDC%':>8s} {'detection%':>11s} {'resilience':>11s}")
    for max_mbf in (1, 3):
        for variant, source in (("unprotected", UNPROTECTED), ("protected", PROTECTED)):
            counts = measure(variant, source, max_mbf)
            print(
                f"{variant:14s} {max_mbf:8d} "
                f"{100.0 * counts.sdc_fraction:8.1f} "
                f"{100.0 * counts.detection_fraction:11.1f} "
                f"{counts.resilience:11.3f}"
            )
    print("\nThe duplicated-computation check converts most silent data corruptions "
          "into detections, under both the single and the multiple bit-flip model.")


if __name__ == "__main__":
    main()
