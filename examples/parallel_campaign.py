#!/usr/bin/env python3
"""Parallel campaigns: saturate the machine, keep the results bit-identical.

This example demonstrates the execution-engine subsystem:

1. run one campaign grid through the serial engine and through a
   multiprocess worker pool, and verify the results match bit for bit;
2. stream per-experiment progress (throughput + ETA) while a campaign runs;
3. checkpoint a sweep mid-way and resume it from the checkpoint file.

Run with::

    python examples/parallel_campaign.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    MultiprocessEngine,
    ResultStore,
    SerialEngine,
)
from repro.injection.faultmodel import win_size_by_index

JOBS = 4
EXPERIMENTS = 150

GRID = [
    CampaignConfig(
        program="crc32",
        technique=technique,
        max_mbf=max_mbf,
        win_size=win_size_by_index(win_index),
        experiments=EXPERIMENTS,
    )
    for technique in ("inject-on-read", "inject-on-write")
    for max_mbf, win_index in ((1, "w1"), (3, "w4"), (30, "w7"))
]


def signature(result):
    """Everything that must match between serial and parallel execution."""
    return (
        result.resolved_win_size,
        result.outcome_counts.as_dict(),
        result.activated_histogram,
        [record.to_tuple() for record in result.records],
    )


def show_progress(progress) -> None:
    eta = progress.eta_seconds
    eta_text = f"{eta:.1f}s" if eta is not None else "?"
    print(
        f"    {progress.done}/{progress.total} experiments "
        f"({progress.experiments_per_second:.0f}/s, ETA {eta_text})",
        end="\r",
    )


def compare_engines() -> None:
    print(f"1. serial vs. multiprocess ({JOBS} jobs) on {len(GRID)} campaigns")
    started = time.perf_counter()
    serial_store = CampaignRunner(engine=SerialEngine()).run_campaigns(GRID)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel_store = CampaignRunner(engine=MultiprocessEngine(JOBS)).run_campaigns(GRID)
    parallel_seconds = time.perf_counter() - started

    experiments = len(GRID) * EXPERIMENTS
    print(f"   serial:       {experiments / serial_seconds:7.0f} experiments/s")
    print(f"   multiprocess: {experiments / parallel_seconds:7.0f} experiments/s")
    for config in GRID:
        assert signature(serial_store.get(config)) == signature(parallel_store.get(config))
    print("   results are bit-identical across engines\n")


def stream_progress() -> None:
    print("2. streaming progress with throughput and ETA")
    runner = CampaignRunner(
        engine=MultiprocessEngine(JOBS), experiment_progress=show_progress
    )
    runner.run_campaign(GRID[1])
    print("\n   done\n")


def checkpointed_sweep() -> None:
    print("3. mid-sweep checkpointing and resume")
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "sweep.json"
        first_half, second_half = GRID[:3], GRID
        runner = CampaignRunner(engine=MultiprocessEngine(JOBS))
        runner.run_campaigns(first_half, checkpoint_path=checkpoint)
        print(f"   interrupted after {len(ResultStore.load(checkpoint))} campaigns")

        resumed = ResultStore.load(checkpoint)
        runner.run_campaigns(second_half, resumed, checkpoint_path=checkpoint)
        print(f"   resumed sweep finished with {len(resumed)} campaigns "
              f"(only {len(second_half) - len(first_half)} ran again)")


def main() -> None:
    compare_engines()
    stream_progress()
    checkpointed_sweep()


if __name__ == "__main__":
    main()
