#!/usr/bin/env python3
"""Quickstart: compile a program, inject a few faults, classify the outcomes.

This example walks the library's core loop end to end on a tiny workload:

1. write a small program in the restricted-Python frontend language;
2. compile it to MiniIR and profile the fault-free (golden) run;
3. inject single and triple bit-flip errors with both techniques;
4. print the resulting outcome distribution and error resilience.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    ExperimentRunner,
    INJECT_ON_READ,
    INJECT_ON_WRITE,
    OutcomeCounts,
)
from repro.frontend import compile_program

# A small matrix-times-vector workload written in the frontend language.
# Globals are declared separately and referenced by name inside the source.
PROGRAM_SOURCE = '''
def dot_row(row: "i64", vector: "i32*", columns: "i64") -> "i64":
    total = 0
    for col in range(columns):
        total += matrix[row * columns + col] * vector[col]
    return total

def main() -> "i64":
    columns = 6
    rows = 6
    vector = array("i32", columns)
    for col in range(columns):
        vector[col] = col + 1
    checksum = 0
    for row in range(rows):
        value = dot_row(row, vector, columns)
        checksum += value * (row + 1)
    output(checksum)
    return checksum
'''


def build_workload() -> ExperimentRunner:
    """Compile the program and profile its golden run."""
    matrix = [((3 * i) % 7) + 1 for i in range(36)]
    program = compile_program("quickstart", [PROGRAM_SOURCE], {"matrix": ("i32", matrix)})
    runner = ExperimentRunner(program)
    golden = runner.golden
    print(f"golden run: {golden.dynamic_instruction_count} dynamic IR instructions, "
          f"output = {golden.output}")
    return runner


def run_campaign(runner: ExperimentRunner, technique, max_mbf: int, experiments: int = 200):
    """Run a small fault-injection campaign and print its outcome breakdown."""
    rng = random.Random(2017)
    counts = OutcomeCounts()
    for _ in range(experiments):
        result = runner.run_sampled(technique, max_mbf=max_mbf, win_size=1, rng=rng)
        counts.add(result.outcome)
    label = "single bit-flip" if max_mbf == 1 else f"{max_mbf} bit-flips"
    print(f"\n{technique.name}, {label}, {experiments} experiments")
    for outcome, count in sorted(counts.counts.items()):
        print(f"  {outcome.value:24s} {count:4d}  ({100.0 * count / counts.total:5.1f}%)")
    print(f"  error resilience          {counts.resilience:.3f}")
    print(f"  SDC percentage            {100.0 * counts.sdc_fraction:.1f}%")
    return counts


def main() -> None:
    runner = build_workload()
    for technique in (INJECT_ON_READ, INJECT_ON_WRITE):
        single = run_campaign(runner, technique, max_mbf=1)
        triple = run_campaign(runner, technique, max_mbf=3)
        difference = 100.0 * (triple.sdc_fraction - single.sdc_fraction)
        print(f"\n=> {technique.name}: triple-bit SDC is {difference:+.1f} percentage points "
              f"relative to single-bit")


if __name__ == "__main__":
    main()
