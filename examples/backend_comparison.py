#!/usr/bin/env python3
"""Race the three execution backends on one workload and prove they agree.

The VM executes MiniIR through three interchangeable backends:

* ``reference`` — tree-walking interpreter, the semantic oracle;
* ``decoded``   — decode-once slot-indexed driver;
* ``compiled``  — Python source transpiled from the decoded form.

This example times each backend's golden run on a registry workload, shows
the compiled backend's generated source for a flavour of what the
transpiler emits, and runs the same seeded fault-injection experiments on
all three to demonstrate they produce identical outcomes.

Run with::

    PYTHONPATH=src python examples/backend_comparison.py [program]
"""

from __future__ import annotations

import sys
import time

from repro import INJECT_ON_READ
from repro.injection import ExperimentRunner
from repro.programs import registry
from repro.vm import (
    CompiledInterpreter,
    Interpreter,
    ReferenceInterpreter,
    compile_module,
    decode_module,
)


def time_backend(label: str, make_interpreter, seconds: float = 0.5):
    """Measure golden-run throughput of one backend (fresh VM per run)."""
    make_interpreter().run()  # warm-up
    runs = 0
    started = time.perf_counter()
    while True:
        result = make_interpreter().run()
        runs += 1
        elapsed = time.perf_counter() - started
        if elapsed >= seconds:
            break
    rate = runs / elapsed
    instr = rate * result.dynamic_instructions
    print(f"  {label:10s} {rate:8.1f} runs/s  ({instr / 1e6:5.2f}M dynamic instr/s)")
    return rate, result


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "crc32"
    program = registry.build_program(name)
    decoded = decode_module(program.module)
    compiled = compile_module(program.module)
    entry = program.entry

    print(f"workload: {name}")
    print("\ngolden-run throughput (bare, no instrumentation):")
    ref_rate, ref_result = time_backend(
        "reference", lambda: ReferenceInterpreter(program.module, entry=entry)
    )
    dec_rate, dec_result = time_backend(
        "decoded", lambda: Interpreter(decoded, entry=entry)
    )
    comp_rate, comp_result = time_backend(
        "compiled", lambda: CompiledInterpreter(compiled, entry=entry)
    )
    print(f"  decoded is {dec_rate / ref_rate:.2f}x reference, "
          f"compiled is {comp_rate / dec_rate:.2f}x decoded")

    assert ref_result.output == dec_result.output == comp_result.output
    assert ref_result.return_value == dec_result.return_value == comp_result.return_value
    print("  all three backends produced identical output and return value")

    # A taste of what the transpiler emits for the entry function.
    source = compiled.source_bare
    snippet = "\n".join(source.splitlines()[:18])
    print(f"\ngenerated source (bare variant, first lines of {len(source)} chars):")
    for line in snippet.splitlines():
        print(f"  | {line}")

    # Identical fault-injection outcomes: same seeds, three backends.
    print("\nseeded injection experiments (inject-on-read, max_mbf=3):")
    runners = {
        backend: ExperimentRunner(program, backend=backend)
        for backend in ("reference", "decoded", "compiled")
    }
    for seed in (11, 42, 2017):
        outcomes = {
            backend: runner.run_seeded(
                INJECT_ON_READ, max_mbf=3, win_size=2, seed=seed
            ).outcome
            for backend, runner in runners.items()
        }
        values = set(outcome.value for outcome in outcomes.values())
        assert len(values) == 1, f"backends diverged at seed {seed}: {outcomes}"
        print(f"  seed {seed:5d}: {outcomes['compiled'].value}  (all backends agree)")


if __name__ == "__main__":
    main()
